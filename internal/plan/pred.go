package plan

import (
	"fmt"
	"math"
	"strings"

	"vectorh/internal/vector"
)

// This file defines the structured scan-predicate vocabulary: per-column
// conjuncts a filter can hand to the storage scan underneath it. A conjunct
// serves two purposes down the stack: its MinMax projection prunes whole
// column blocks before any IO, and (unless the set is marked SkipOnly) the
// scan evaluates it vectorized over the decoded predicate columns, so
// payload columns of non-qualifying rows are never decoded at all (late
// materialization).

// PredOp enumerates the conjunct shapes a scan can evaluate.
type PredOp uint8

// Conjunct shapes. Range bounds are inclusive unless the strictness flags
// say otherwise; open bounds use the kind's infinities (or the HasStr flags
// for strings, which have no maximum value).
const (
	// PredIntRange is IntLo <= v <= IntHi over int32/int64 storage
	// (plain integers and dates). Strictness is folded into the bounds.
	PredIntRange PredOp = iota + 1
	// PredDecRange is FloatLo <= v*Scale <= FloatHi over decimal storage
	// (scaled int64). The scan evaluates it with the exact float arithmetic
	// the expression interpreter uses, so results are bit-identical to a
	// Select above the scan.
	PredDecRange
	// PredFloatRange is FloatLo <= v <= FloatHi over float64 storage.
	PredFloatRange
	// PredStrRange is StrLo <= v <= StrHi over string storage (equality is
	// StrLo == StrHi).
	PredStrRange
	// PredIntIn is v ∈ Ints over int32/int64 storage.
	PredIntIn
	// PredStrIn is v ∈ Strs over string storage.
	PredStrIn
)

// ColPred is one pushable conjunct on one column.
type ColPred struct {
	Col string
	Op  PredOp

	// PredIntRange bounds (math.MinInt64 / math.MaxInt64 = unbounded).
	IntLo, IntHi int64
	// PredDecRange / PredFloatRange bounds (±Inf = unbounded).
	FloatLo, FloatHi float64
	// Strict bounds (v > lo / v < hi) for the float-compared and string
	// range shapes.
	LoStrict, HiStrict bool
	// Scale converts decimal storage to its logical value (0.01 for two
	// digits); PredDecRange only.
	Scale float64
	// PredStrRange bounds; a false HasStrLo/HasStrHi leaves that side open.
	StrLo, StrHi       string
	HasStrLo, HasStrHi bool
	// Membership lists.
	Ints []int64
	Strs []string
}

// IntRange builds an inclusive integer range conjunct.
func IntRange(col string, lo, hi int64) ColPred {
	return ColPred{Col: col, Op: PredIntRange, IntLo: lo, IntHi: hi}
}

// IntMax builds v <= hi over integer storage.
func IntMax(col string, hi int64) ColPred { return IntRange(col, math.MinInt64, hi) }

// IntMin builds v >= lo over integer storage.
func IntMin(col string, lo int64) ColPred { return IntRange(col, lo, math.MaxInt64) }

// DateRange builds an inclusive date range conjunct from date literals.
func DateRange(col, lo, hi string) ColPred {
	return IntRange(col, int64(vector.MustDate(lo)), int64(vector.MustDate(hi)))
}

// DecRange builds a range conjunct over a two-digit decimal column,
// compared in the logical (scaled float) domain exactly as Dec() exprs are.
func DecRange(col string, lo, hi float64, loStrict, hiStrict bool) ColPred {
	return ColPred{Col: col, Op: PredDecRange, Scale: 0.01,
		FloatLo: lo, FloatHi: hi, LoStrict: loStrict, HiStrict: hiStrict}
}

// DecMax builds v < hi (strict) or v <= hi over a decimal column.
func DecMax(col string, hi float64, strict bool) ColPred {
	return DecRange(col, math.Inf(-1), hi, false, strict)
}

// FloatRange builds a range conjunct over a float64 column.
func FloatRange(col string, lo, hi float64, loStrict, hiStrict bool) ColPred {
	return ColPred{Col: col, Op: PredFloatRange,
		FloatLo: lo, FloatHi: hi, LoStrict: loStrict, HiStrict: hiStrict}
}

// StrEq builds v = s over a string column.
func StrEq(col, s string) ColPred {
	return ColPred{Col: col, Op: PredStrRange, StrLo: s, StrHi: s, HasStrLo: true, HasStrHi: true}
}

// StrInList builds v ∈ vals over a string column.
func StrInList(col string, vals ...string) ColPred {
	return ColPred{Col: col, Op: PredStrIn, Strs: vals}
}

// IntInList builds v ∈ vals over an integer column.
func IntInList(col string, vals ...int64) ColPred {
	return ColPred{Col: col, Op: PredIntIn, Ints: vals}
}

// String renders the conjunct for plan explanations.
func (p ColPred) String() string {
	bound := func(strict bool) string {
		if strict {
			return "("
		}
		return "["
	}
	boundHi := func(strict bool) string {
		if strict {
			return ")"
		}
		return "]"
	}
	switch p.Op {
	case PredIntRange:
		lo, hi := "min", "max"
		if p.IntLo != math.MinInt64 {
			lo = fmt.Sprintf("%d", p.IntLo)
		}
		if p.IntHi != math.MaxInt64 {
			hi = fmt.Sprintf("%d", p.IntHi)
		}
		return fmt.Sprintf("%s in [%s,%s]", p.Col, lo, hi)
	case PredDecRange, PredFloatRange:
		lo, hi := "min", "max"
		if !math.IsInf(p.FloatLo, -1) {
			lo = fmt.Sprintf("%g", p.FloatLo)
		}
		if !math.IsInf(p.FloatHi, 1) {
			hi = fmt.Sprintf("%g", p.FloatHi)
		}
		return fmt.Sprintf("%s in %s%s,%s%s", p.Col, bound(p.LoStrict), lo, hi, boundHi(p.HiStrict))
	case PredStrRange:
		if p.HasStrLo && p.HasStrHi && p.StrLo == p.StrHi && !p.LoStrict && !p.HiStrict {
			return fmt.Sprintf("%s=%q", p.Col, p.StrLo)
		}
		lo, hi := "min", "max"
		if p.HasStrLo {
			lo = fmt.Sprintf("%q", p.StrLo)
		}
		if p.HasStrHi {
			hi = fmt.Sprintf("%q", p.StrHi)
		}
		return fmt.Sprintf("%s in %s%s,%s%s", p.Col, bound(p.LoStrict), lo, hi, boundHi(p.HiStrict))
	case PredIntIn:
		return fmt.Sprintf("%s in %v", p.Col, p.Ints)
	case PredStrIn:
		parts := make([]string, len(p.Strs))
		for i, s := range p.Strs {
			parts[i] = fmt.Sprintf("%q", s)
		}
		return fmt.Sprintf("%s in [%s]", p.Col, strings.Join(parts, " "))
	}
	return p.Col + "?"
}

// ScanPredSet is a conjunction of pushable per-column predicates attached to
// a scan. Unless SkipOnly is set, the scan both block-skips on the
// conjuncts' MinMax projections and filters rows by them, which lets the
// rewriter elide a Select the set fully subsumes.
type ScanPredSet struct {
	Preds []ColPred

	// SkipOnly limits the set to MinMax block skipping: rows are not
	// filtered. Builder-style Skip() hints use this — they assert a data
	// range that is not necessarily implied by the filter predicate, so
	// applying them to rows (e.g. to fresh trickle inserts outside the
	// asserted range) could change results.
	SkipOnly bool

	// CodeSpace marks the set legal for compressed-domain evaluation: the
	// rewriter sets it when the conjuncts are genuinely row-filtering (never
	// for SkipOnly hints) and execution on compressed data is enabled. The
	// scan then transposes string conjuncts into dictionary-code space (one
	// dictionary probe per block instead of per-row string compares, with
	// dictionary-miss block pruning) and verdicts integer conjuncts against
	// PFOR frame bounds before unpacking.
	CodeSpace bool
}

// Clone returns an independent copy of the set.
func (s *ScanPredSet) Clone() *ScanPredSet {
	if s == nil {
		return nil
	}
	out := &ScanPredSet{Preds: append([]ColPred(nil), s.Preds...), SkipOnly: s.SkipOnly, CodeSpace: s.CodeSpace}
	return out
}

// FirstIntRange returns the first integer-range conjunct (compatibility
// shim for consumers that understand only single-column int skipping, like
// the Hadoop-format baseline engine).
func (s *ScanPredSet) FirstIntRange() (col string, lo, hi int64, ok bool) {
	if s == nil {
		return "", 0, 0, false
	}
	for _, p := range s.Preds {
		if p.Op == PredIntRange {
			return p.Col, p.IntLo, p.IntHi, true
		}
	}
	return "", 0, 0, false
}

// String renders the set for plan explanations.
func (s *ScanPredSet) String() string {
	parts := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " & ")
}
