package plan

import (
	"fmt"

	"vectorh/internal/vector"
)

// Catalog resolves table metadata for schema inference.
type Catalog interface {
	// TableSchema returns the schema of a table.
	TableSchema(name string) (vector.Schema, error)
}

// Node is a logical plan node.
type Node interface {
	// Schema infers the output schema against a catalog.
	Schema(cat Catalog) (vector.Schema, error)
}

// ScanNode reads a projection of a base table.
type ScanNode struct {
	Table string
	Cols  []string // nil = all columns
}

// Scan builds a table scan.
func Scan(table string, cols ...string) *ScanNode { return &ScanNode{Table: table, Cols: cols} }

// Schema implements Node.
func (n *ScanNode) Schema(cat Catalog) (vector.Schema, error) {
	full, err := cat.TableSchema(n.Table)
	if err != nil {
		return nil, err
	}
	if n.Cols == nil {
		return full, nil
	}
	out := make(vector.Schema, 0, len(n.Cols))
	for _, c := range n.Cols {
		f, err := full.Field(c)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// FilterNode applies a predicate. An optional SkipSet carries the
// predicate's pushable per-column conjuncts for the scan underneath: they
// prune block IO via MinMax summaries and — unless the set is SkipOnly —
// are evaluated by the scan itself, late-materializing payload columns.
// Residual is the part of Pred the set does not cover; nil with a non-nil
// SkipSet means the set subsumes the whole predicate and the rewriter may
// elide the Select above a scan entirely.
type FilterNode struct {
	Child Node
	Pred  Expr

	SkipSet  *ScanPredSet
	Residual *Expr
}

// Filter builds a selection.
func Filter(child Node, pred Expr) *FilterNode { return &FilterNode{Child: child, Pred: pred} }

// Skip attaches a MinMax skip hint asserting the column's data range. The
// hint is skip-only: blocks wholly outside [lo, hi] are not read, but rows
// are never filtered by it (the range is an assertion about stored data,
// not necessarily implied by the predicate), and the full predicate still
// runs above the scan.
func (n *FilterNode) Skip(col string, lo, hi int64) *FilterNode {
	if n.SkipSet == nil || !n.SkipSet.SkipOnly {
		n.SkipSet = &ScanPredSet{SkipOnly: true}
	}
	n.SkipSet.Preds = append(n.SkipSet.Preds, IntRange(col, lo, hi))
	n.Residual = &n.Pred
	return n
}

// SkipDates attaches a skip hint with date-literal bounds.
func (n *FilterNode) SkipDates(col, lo, hi string) *FilterNode {
	return n.Skip(col, int64(vector.MustDate(lo)), int64(vector.MustDate(hi)))
}

// Push attaches a derived scan-predicate set whose conjuncts are implied by
// the predicate, plus the non-pushable residual (nil when the set covers the
// whole predicate).
func (n *FilterNode) Push(set *ScanPredSet, residual *Expr) *FilterNode {
	n.SkipSet, n.Residual = set, residual
	return n
}

// Schema implements Node.
func (n *FilterNode) Schema(cat Catalog) (vector.Schema, error) { return n.Child.Schema(cat) }

// NamedExpr is a projected expression with an output name.
type NamedExpr struct {
	Name string
	Expr Expr
}

// As names an expression.
func As(name string, e Expr) NamedExpr { return NamedExpr{name, e} }

// C projects a bare column under its own name.
func C(name string) NamedExpr { return NamedExpr{name, Col(name)} }

// ProjectNode computes expressions.
type ProjectNode struct {
	Child Node
	Exprs []NamedExpr
}

// Project builds a projection.
func Project(child Node, exprs ...NamedExpr) *ProjectNode { return &ProjectNode{child, exprs} }

// Schema implements Node.
func (n *ProjectNode) Schema(cat Catalog) (vector.Schema, error) {
	cs, err := n.Child.Schema(cat)
	if err != nil {
		return nil, err
	}
	out := make(vector.Schema, 0, len(n.Exprs))
	for _, ne := range n.Exprs {
		t, err := ne.Expr.Type(cs)
		if err != nil {
			return nil, fmt.Errorf("plan: project %q: %w", ne.Name, err)
		}
		out = append(out, vector.Field{Name: ne.Name, Type: t})
	}
	return out, nil
}

// AggFuncName enumerates logical aggregates.
type AggFuncName string

// Logical aggregate functions.
const (
	Sum           AggFuncName = "sum"
	Count         AggFuncName = "count"
	CountStar     AggFuncName = "count(*)"
	Min           AggFuncName = "min"
	Max           AggFuncName = "max"
	Avg           AggFuncName = "avg"
	CountDistinct AggFuncName = "count(distinct)"
)

// AggItem is one aggregate with an output name.
type AggItem struct {
	Name string
	Func AggFuncName
	Arg  Expr // zero Expr for CountStar
}

// A builds an aggregate item.
func A(name string, fn AggFuncName, arg Expr) AggItem { return AggItem{name, fn, arg} }

// AStar builds COUNT(*).
func AStar(name string) AggItem { return AggItem{Name: name, Func: CountStar} }

// AggregateNode groups and aggregates.
type AggregateNode struct {
	Child   Node
	GroupBy []string // bare column names of the child schema
	Aggs    []AggItem
}

// Aggregate builds a group-by.
func Aggregate(child Node, groupBy []string, aggs ...AggItem) *AggregateNode {
	return &AggregateNode{child, groupBy, aggs}
}

// Schema implements Node.
func (n *AggregateNode) Schema(cat Catalog) (vector.Schema, error) {
	cs, err := n.Child.Schema(cat)
	if err != nil {
		return nil, err
	}
	out := make(vector.Schema, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		f, err := cs.Field(g)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	for _, a := range n.Aggs {
		var t vector.Type
		switch a.Func {
		case Count, CountStar, CountDistinct:
			t = vector.TInt64
		case Avg:
			t = vector.TFloat64
		default:
			at, err := a.Arg.Type(cs)
			if err != nil {
				return nil, err
			}
			t = at
			if t.Kind == vector.Int32 {
				t = vector.TInt64
			}
		}
		out = append(out, vector.Field{Name: a.Name, Type: t})
	}
	return out, nil
}

// JoinKind enumerates logical join types.
type JoinKind uint8

// Logical join types. The left child is the probe/preserved side.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
	SemiJoin
	AntiJoin
)

// JoinNode joins two children on equality keys.
type JoinNode struct {
	Left, Right Node
	Kind        JoinKind
	LeftKeys    []string
	RightKeys   []string
	// ExtraPred optionally filters joined rows (evaluated over the join
	// output schema).
	ExtraPred *Expr
}

// Join builds an equality join.
func Join(kind JoinKind, left, right Node, leftKeys, rightKeys []string) *JoinNode {
	return &JoinNode{Left: left, Right: right, Kind: kind, LeftKeys: leftKeys, RightKeys: rightKeys}
}

// On adds a residual predicate over the join output.
func (n *JoinNode) On(pred Expr) *JoinNode { n.ExtraPred = &pred; return n }

// MatchedCol is the implicit boolean column appended by left outer joins.
const MatchedCol = "__matched"

// Schema implements Node.
func (n *JoinNode) Schema(cat Catalog) (vector.Schema, error) {
	ls, err := n.Left.Schema(cat)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case SemiJoin, AntiJoin:
		return ls, nil
	}
	rs, err := n.Right.Schema(cat)
	if err != nil {
		return nil, err
	}
	out := append(ls.Clone(), rs...)
	if n.Kind == LeftOuterJoin {
		out = append(out, vector.Field{Name: MatchedCol, Type: vector.TBool})
	}
	return out, nil
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Asc builds an ascending order key.
func Asc(e Expr) OrderKey { return OrderKey{Expr: e} }

// Desc builds a descending order key.
func Desc(e Expr) OrderKey { return OrderKey{Expr: e, Desc: true} }

// OrderByNode sorts, optionally truncating to Limit rows (TopN when > 0).
type OrderByNode struct {
	Child Node
	Keys  []OrderKey
	Limit int64 // 0 = no limit
}

// OrderBy builds a sort.
func OrderBy(child Node, keys ...OrderKey) *OrderByNode {
	return &OrderByNode{Child: child, Keys: keys}
}

// Top builds a sort with FIRST n semantics.
func Top(child Node, n int64, keys ...OrderKey) *OrderByNode {
	return &OrderByNode{Child: child, Keys: keys, Limit: n}
}

// Schema implements Node.
func (n *OrderByNode) Schema(cat Catalog) (vector.Schema, error) { return n.Child.Schema(cat) }

// LimitNode truncates.
type LimitNode struct {
	Child Node
	N     int64
}

// Limit builds a LIMIT.
func Limit(child Node, n int64) *LimitNode { return &LimitNode{child, n} }

// Schema implements Node.
func (n *LimitNode) Schema(cat Catalog) (vector.Schema, error) { return n.Child.Schema(cat) }
