package plan

import (
	"testing"

	"vectorh/internal/vector"
)

type cat struct{}

func (cat) TableSchema(name string) (vector.Schema, error) {
	return vector.Schema{
		{Name: "k", Type: vector.TInt64},
		{Name: "d", Type: vector.TDate},
		{Name: "price", Type: vector.TDecimal},
		{Name: "name", Type: vector.TString},
	}, nil
}

func TestScanSchemaProjection(t *testing.T) {
	s, err := Scan("t", "name", "k").Schema(cat{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Name != "name" || s[1].Type != vector.TInt64 {
		t.Fatalf("schema = %v", s)
	}
	if _, err := Scan("t", "ghost").Schema(cat{}); err == nil {
		t.Fatal("unknown column should fail")
	}
	full, _ := Scan("t").Schema(cat{})
	if len(full) != 4 {
		t.Fatalf("full schema = %v", full)
	}
}

func TestProjectSchemaTypes(t *testing.T) {
	p := Project(Scan("t"),
		As("x", Mul(Dec("price"), Float(2))),
		As("y", Year(Col("d"))),
		C("k"))
	s, err := p.Schema(cat{})
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Type != vector.TFloat64 || s[1].Type.Kind != vector.Int32 || s[2].Type != vector.TInt64 {
		t.Fatalf("schema = %v", s)
	}
}

func TestAggregateSchema(t *testing.T) {
	a := Aggregate(Scan("t"), []string{"name"},
		A("s", Sum, Dec("price")),
		A("c", CountStar, Expr{}),
		A("m", Avg, Col("k")),
		A("d", CountDistinct, Col("k")))
	s, err := a.Schema(cat{})
	if err != nil {
		t.Fatal(err)
	}
	want := []vector.Type{vector.TString, vector.TFloat64, vector.TInt64, vector.TFloat64, vector.TInt64}
	for i, w := range want {
		if s[i].Type != w {
			t.Fatalf("col %d type = %v, want %v", i, s[i].Type, w)
		}
	}
}

func TestJoinSchemas(t *testing.T) {
	inner := Join(InnerJoin, Scan("t", "k"), Scan("t", "name"), []string{"k"}, []string{"name"})
	s, err := inner.Schema(cat{})
	if err != nil || len(s) != 2 {
		t.Fatalf("inner schema = %v err=%v", s, err)
	}
	outer := Join(LeftOuterJoin, Scan("t", "k"), Scan("t", "name"), []string{"k"}, []string{"name"})
	s, _ = outer.Schema(cat{})
	if len(s) != 3 || s[2].Name != MatchedCol {
		t.Fatalf("outer schema = %v", s)
	}
	semi := Join(SemiJoin, Scan("t", "k"), Scan("t", "name"), []string{"k"}, []string{"name"})
	s, _ = semi.Schema(cat{})
	if len(s) != 1 {
		t.Fatalf("semi schema = %v", s)
	}
}

func TestExprBindErrors(t *testing.T) {
	schema, _ := cat{}.TableSchema("t")
	if _, err := Col("nope").Bind(schema); err == nil {
		t.Fatal("unknown column should fail to bind")
	}
	if _, err := Add(Col("k"), Col("nope")).Bind(schema); err == nil {
		t.Fatal("nested unknown column should fail")
	}
	e, err := Between(Col("d"), Date("1995-01-01"), DateOffset("1995-01-01", 2)).Bind(schema)
	if err != nil || e == nil {
		t.Fatalf("between bind: %v", err)
	}
}

func TestFilterSkipHints(t *testing.T) {
	f := Filter(Scan("t"), GE(Col("d"), Date("1995-06-01"))).SkipDates("d", "1995-06-01", "1998-12-31")
	col, lo, _, ok := f.SkipSet.FirstIntRange()
	if !ok || col != "d" || lo != int64(vector.MustDate("1995-06-01")) {
		t.Fatalf("skip hint = %+v", f.SkipSet)
	}
	if !f.SkipSet.SkipOnly {
		t.Fatalf("builder Skip() must be skip-only (an asserted range, not an implied one): %+v", f.SkipSet)
	}
	if f.Residual == nil {
		t.Fatal("builder Skip() must keep the full predicate as residual")
	}
	if s, err := f.Schema(cat{}); err != nil || len(s) != 4 {
		t.Fatalf("filter schema = %v err=%v", s, err)
	}
}

func TestOrderByAndLimitSchemas(t *testing.T) {
	o := Top(Scan("t", "k"), 5, Desc(Col("k")))
	if o.Limit != 5 || o.Keys[0].Desc != true {
		t.Fatalf("top = %+v", o)
	}
	l := Limit(Scan("t", "k"), 3)
	if s, err := l.Schema(cat{}); err != nil || len(s) != 1 {
		t.Fatalf("limit schema = %v err=%v", s, err)
	}
}
