// Package plan defines the logical query plans the engine's clients build
// (TPC-H queries, examples) and the name-based expression language they use.
// The Parallel Rewriter turns these into distributed physical plans.
package plan

import (
	"fmt"

	"vectorh/internal/expr"
	"vectorh/internal/vector"
)

// Expr is a name-based expression that binds to column positions against a
// concrete schema at rewrite time.
type Expr struct {
	// Name is set for bare column references (used for key matching).
	Name string
	typ  func(s vector.Schema) (vector.Type, error)
	bind func(s vector.Schema) (expr.Expr, error)
}

// Bind resolves the expression against a schema.
func (e Expr) Bind(s vector.Schema) (expr.Expr, error) { return e.bind(s) }

// Type infers the expression's result type against a schema.
func (e Expr) Type(s vector.Schema) (vector.Type, error) { return e.typ(s) }

// Col references a column by name.
func Col(name string) Expr {
	return Expr{
		Name: name,
		typ: func(s vector.Schema) (vector.Type, error) {
			f, err := s.Field(name)
			if err != nil {
				return vector.Type{}, err
			}
			return f.Type, nil
		},
		bind: func(s vector.Schema) (expr.Expr, error) {
			i := s.Index(name)
			if i < 0 {
				return nil, fmt.Errorf("plan: unknown column %q", name)
			}
			return expr.Col(i, s[i].Type.Kind), nil
		},
	}
}

// Dec references a decimal (scaled int64) column and converts it to float64.
func Dec(name string) Expr { return Scaled(Col(name), 0.01) }

func lit(t vector.Type, e expr.Expr) Expr {
	return Expr{
		typ:  func(vector.Schema) (vector.Type, error) { return t, nil },
		bind: func(vector.Schema) (expr.Expr, error) { return e, nil },
	}
}

// Int is an int64 literal.
func Int(v int64) Expr { return lit(vector.TInt64, expr.ConstInt64(v)) }

// Float is a float64 literal.
func Float(v float64) Expr { return lit(vector.TFloat64, expr.ConstFloat(v)) }

// Str is a string literal.
func Str(v string) Expr { return lit(vector.TString, expr.ConstStr(v)) }

// Date is a date literal ("YYYY-MM-DD").
func Date(s string) Expr { return lit(vector.TDate, expr.ConstInt32(vector.MustDate(s))) }

// DateVal is a date literal from days since epoch.
func DateVal(days int32) Expr { return lit(vector.TDate, expr.ConstInt32(days)) }

// DateOffset is a date literal shifted by months (interval arithmetic is
// folded at plan-build time).
func DateOffset(s string, months int) Expr {
	return lit(vector.TDate, expr.ConstInt32(vector.AddMonths(vector.MustDate(s), months)))
}

func binary(l, r Expr, t func(lt, rt vector.Type) vector.Type,
	mk func(le, re expr.Expr) expr.Expr) Expr {
	return Expr{
		typ: func(s vector.Schema) (vector.Type, error) {
			lt, err := l.typ(s)
			if err != nil {
				return vector.Type{}, err
			}
			rt, err := r.typ(s)
			if err != nil {
				return vector.Type{}, err
			}
			return t(lt, rt), nil
		},
		bind: func(s vector.Schema) (expr.Expr, error) {
			le, err := l.bind(s)
			if err != nil {
				return nil, err
			}
			re, err := r.bind(s)
			if err != nil {
				return nil, err
			}
			return mk(le, re), nil
		},
	}
}

func numType(lt, rt vector.Type) vector.Type {
	if lt.Kind == vector.Float64 || rt.Kind == vector.Float64 {
		return vector.TFloat64
	}
	return vector.TInt64
}

func boolType(vector.Type, vector.Type) vector.Type { return vector.TBool }

// Add returns l + r.
func Add(l, r Expr) Expr { return binary(l, r, numType, expr.Add) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return binary(l, r, numType, expr.Sub) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return binary(l, r, numType, expr.Mul) }

// Div returns l / r (always float64).
func Div(l, r Expr) Expr {
	return binary(l, r, func(vector.Type, vector.Type) vector.Type { return vector.TFloat64 }, expr.Div)
}

// LT/LE/GT/GE/EQ/NE are comparisons.
func LT(l, r Expr) Expr { return binary(l, r, boolType, expr.LT) }

// LE returns l <= r.
func LE(l, r Expr) Expr { return binary(l, r, boolType, expr.LE) }

// GT returns l > r.
func GT(l, r Expr) Expr { return binary(l, r, boolType, expr.GT) }

// GE returns l >= r.
func GE(l, r Expr) Expr { return binary(l, r, boolType, expr.GE) }

// EQ returns l = r.
func EQ(l, r Expr) Expr { return binary(l, r, boolType, expr.EQ) }

// NE returns l <> r.
func NE(l, r Expr) Expr { return binary(l, r, boolType, expr.NE) }

// And returns l AND r.
func And(l, r Expr) Expr { return binary(l, r, boolType, expr.And) }

// AndAll folds a conjunction.
func AndAll(es ...Expr) Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = And(out, e)
	}
	return out
}

// Or returns l OR r.
func Or(l, r Expr) Expr { return binary(l, r, boolType, expr.Or) }

func unary(c Expr, t func(vector.Type) vector.Type, mk func(expr.Expr) expr.Expr) Expr {
	return Expr{
		typ: func(s vector.Schema) (vector.Type, error) {
			ct, err := c.typ(s)
			if err != nil {
				return vector.Type{}, err
			}
			return t(ct), nil
		},
		bind: func(s vector.Schema) (expr.Expr, error) {
			ce, err := c.bind(s)
			if err != nil {
				return nil, err
			}
			return mk(ce), nil
		},
	}
}

// Not negates a boolean.
func Not(c Expr) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TBool }, expr.Not)
}

// Scaled converts a scaled integer to float.
func Scaled(c Expr, factor float64) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TFloat64 },
		func(e expr.Expr) expr.Expr { return expr.Scaled(e, factor) })
}

// Year extracts the year of a date.
func Year(c Expr) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TInt32 }, expr.Year)
}

// Bool is a boolean literal (e.g. the TRUE predicate of an unfiltered
// UPDATE/DELETE).
func Bool(v bool) Expr { return lit(vector.TBool, expr.ConstBool(v)) }

// CastInt32 narrows an integer expression to int32 storage, failing at
// evaluation on overflow.
func CastInt32(c Expr) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TInt32 }, expr.CastInt32)
}

// CastInt64 widens an integer expression to int64 storage.
func CastInt64(c Expr) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TInt64 }, expr.CastInt64)
}

// ToDecimal converts a numeric expression to decimal storage (scaled int64,
// two digits): the inverse of Dec.
func ToDecimal(c Expr) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TDecimal },
		func(e expr.Expr) expr.Expr { return expr.ToScaledInt64(e, 100) })
}

// Like is SQL LIKE with % wildcards.
func Like(c Expr, pattern string) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TBool },
		func(e expr.Expr) expr.Expr { return expr.Like(e, pattern) })
}

// NotLike is NOT LIKE.
func NotLike(c Expr, pattern string) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TBool },
		func(e expr.Expr) expr.Expr { return expr.NotLike(e, pattern) })
}

// InStr is membership in a string list.
func InStr(c Expr, vals ...string) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TBool },
		func(e expr.Expr) expr.Expr { return expr.InStr(e, vals...) })
}

// InInt is membership in an int list.
func InInt(c Expr, vals ...int64) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TBool },
		func(e expr.Expr) expr.Expr { return expr.InInt64(e, vals...) })
}

// Substr is SUBSTRING(c FROM start FOR length), 1-based.
func Substr(c Expr, start, length int) Expr {
	return unary(c, func(vector.Type) vector.Type { return vector.TString },
		func(e expr.Expr) expr.Expr { return expr.Substr(e, start, length) })
}

// Between is lo <= c <= hi.
func Between(c, lo, hi Expr) Expr { return And(GE(c, lo), LE(c, hi)) }

// Case is CASE WHEN cond THEN a ELSE b END.
func Case(cond, a, b Expr) Expr {
	return Expr{
		typ: func(s vector.Schema) (vector.Type, error) { return a.typ(s) },
		bind: func(s vector.Schema) (expr.Expr, error) {
			ce, err := cond.bind(s)
			if err != nil {
				return nil, err
			}
			ae, err := a.bind(s)
			if err != nil {
				return nil, err
			}
			be, err := b.bind(s)
			if err != nil {
				return nil, err
			}
			return expr.Case(ce, ae, be), nil
		},
	}
}
