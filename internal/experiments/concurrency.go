package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"vectorh"
	"vectorh/internal/server"
	"vectorh/internal/tpch"
)

// ConcurrencyPoint is one load level of the serving-layer experiment.
type ConcurrencyPoint struct {
	Sessions int
	Queries  int // total queries completed across sessions
	Elapsed  time.Duration
	QPS      float64
	// Per-query wall-clock latency percentiles (prepare excluded; queue
	// wait included — under admission control the tail IS the queue).
	P50, P95, P99 time.Duration
}

// ConcurrencyResult is the multi-session throughput experiment: the
// SQL-on-Hadoop comparison literature (Tapdiya & Fabbri) measures exactly
// this axis — how a system's aggregate throughput scales as concurrent
// sessions grow.
type ConcurrencyResult struct {
	SF            float64
	Nodes         int
	MaxConcurrent int
	Points        []ConcurrencyPoint
	Validated     int  // queries checked row-identical vs in-process execution
	AllMatch      bool // every validated query matched
	// PlanCacheHitRate is hits/(hits+misses) of the shared compiled-plan
	// cache over the whole run. A repeated-query workload should sit well
	// above 0.9: every session executes the same 22 statements through
	// wire-level prepared statements, so only the first compile of each
	// distinct text (and post-DML epoch flushes) misses.
	PlanCacheHitRate float64
	// SlowQueries counts executions at or above SlowThreshold captured by
	// the structured slow-query log during the run — under deep backlogs the
	// log records exactly the tail the latency percentiles summarize.
	SlowQueries   int64
	SlowThreshold time.Duration
}

// Report renders the experiment.
func (r *ConcurrencyResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serving-layer concurrency (sf=%g, %d nodes, admission limit %d):\n",
		r.SF, r.Nodes, r.MaxConcurrent)
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %3d sessions  %5d queries in %-12v  %7.1f q/s   p50 %-9v p95 %-9v p99 %v\n",
			p.Sessions, p.Queries, p.Elapsed.Round(time.Millisecond), p.QPS,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	status := "OK"
	if !r.AllMatch {
		status = "MISMATCH"
	}
	fmt.Fprintf(&sb, "  validation: %d remote results vs in-process execution: %s\n", r.Validated, status)
	fmt.Fprintf(&sb, "  plan cache hit rate: %.1f%%\n", 100*r.PlanCacheHitRate)
	fmt.Fprintf(&sb, "  slow-query log: %d executions at or above %v\n", r.SlowQueries, r.SlowThreshold)
	return sb.String()
}

// Concurrency runs the serving-layer experiment: start vectorh-serve
// in-process over loopback TCP, then drive the SQL TPC-H workload from 1,
// 4, 16, 64 and 256 concurrent client sessions, recording aggregate
// queries/sec and per-query latency percentiles. Each session registers the
// 22 statements as wire-level prepared statements once, then executes by
// handle, so all compilation beyond the first of each text is served by the
// shared plan cache. Every session's first pass is validated row-identical
// (floats rounded — exchange arrival order perturbs the last bits) against
// in-process execution of the same statements.
func Concurrency(sf float64, nodes int) (*ConcurrencyResult, error) {
	const threads, partitions = 2, 6
	eng, err := NewEngine(nodes, threads, partitions)
	if err != nil {
		return nil, err
	}
	d := tpch.Generate(sf, 42)
	if err := tpch.LoadIntoEngine(eng, d, partitions); err != nil {
		return nil, err
	}
	db := &vectorh.DB{Engine: eng}

	var qs []int
	for q := range tpch.SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	want := make(map[int][]string, len(qs))
	for _, q := range qs {
		rows, err := db.QuerySQL(tpch.SQLQueries[q])
		if err != nil {
			return nil, fmt.Errorf("Q%02d reference: %w", q, err)
		}
		want[q] = normRows(rows)
	}

	res := &ConcurrencyResult{SF: sf, Nodes: nodes, MaxConcurrent: 8, AllMatch: true,
		SlowThreshold: 100 * time.Millisecond}
	// QueueWait must cover the deepest backlog: at 256 sessions over 8
	// slots a query can sit queued for minutes — that is measured tail
	// latency, not a rejection. The slow-query log runs alongside (entries
	// discarded, count reported) to exercise the profiled execution path
	// under real concurrency.
	srv := server.New(db, server.Options{MaxConcurrent: res.MaxConcurrent, QueueWait: 5 * time.Minute,
		SlowQueryLog: io.Discard, SlowQueryThreshold: res.SlowThreshold})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	for _, sessions := range []int{1, 4, 16, 64, 256} {
		// Each session runs the full workload `passes` times; one pass at
		// the widest levels keeps the experiment's runtime bounded while
		// still measuring thousands of queries per point.
		passes := 3
		if sessions >= 64 {
			passes = 1
		}
		point, validated, mismatches, err := runLevel(db, addr.String(), qs, want, sessions, passes)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, point)
		res.Validated += validated
		if mismatches > 0 {
			res.AllMatch = false
		}
	}
	pc := db.PlanCacheStats()
	if total := pc.Hits + pc.Misses; total > 0 {
		res.PlanCacheHitRate = float64(pc.Hits) / float64(total)
	}
	res.SlowQueries = srv.Stats().SlowQueries
	return res, nil
}

// runLevel drives one load level and returns its point plus validation
// counts.
func runLevel(db *vectorh.DB, addr string, qs []int, want map[int][]string,
	sessions, passes int) (ConcurrencyPoint, int, int, error) {
	clients := make([]*server.Client, sessions)
	stmts := make([][]*server.PreparedStmt, sessions)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range clients {
		c, err := server.Dial(addr)
		if err != nil {
			return ConcurrencyPoint{}, 0, 0, err
		}
		clients[i] = c
		stmts[i] = make([]*server.PreparedStmt, len(qs))
		for j, q := range qs {
			ps, err := c.Prepare(tpch.SQLQueries[q])
			if err != nil {
				return ConcurrencyPoint{}, 0, 0, fmt.Errorf("prepare Q%02d: %w", q, err)
			}
			stmts[i][j] = ps
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	lats := make([][]time.Duration, sessions)
	var mu sync.Mutex
	validated, mismatches := 0, 0
	start := time.Now()
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, passes*len(qs))
			for pass := 0; pass < passes; pass++ {
				for j, q := range qs {
					t0 := time.Now()
					r, err := stmts[i][j].Query(context.Background())
					if err != nil {
						errs <- fmt.Errorf("Q%02d: %w", q, err)
						return
					}
					mine = append(mine, time.Since(t0))
					if pass == 0 {
						match := eqStrings(normRows(r.Rows), want[q])
						mu.Lock()
						validated++
						if !match {
							mismatches++
						}
						mu.Unlock()
					}
				}
			}
			lats[i] = mine
			errs <- nil
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for range clients {
		if err := <-errs; err != nil {
			return ConcurrencyPoint{}, 0, 0, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	total := sessions * passes * len(qs)
	return ConcurrencyPoint{
		Sessions: sessions,
		Queries:  total,
		Elapsed:  elapsed,
		QPS:      float64(total) / elapsed.Seconds(),
		P50:      percentile(all, 0.50),
		P95:      percentile(all, 0.95),
		P99:      percentile(all, 0.99),
	}, validated, mismatches, nil
}

// percentile reads the q-quantile from sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func normRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.6g|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
