package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vectorh"
	"vectorh/internal/server"
	"vectorh/internal/tpch"
)

// ConcurrencyPoint is one load level of the serving-layer experiment.
type ConcurrencyPoint struct {
	Sessions int
	Queries  int // total queries completed across sessions
	Elapsed  time.Duration
	QPS      float64
}

// ConcurrencyResult is the multi-session throughput experiment: the
// SQL-on-Hadoop comparison literature (Tapdiya & Fabbri) measures exactly
// this axis — how a system's aggregate throughput scales as concurrent
// sessions grow.
type ConcurrencyResult struct {
	SF            float64
	Nodes         int
	MaxConcurrent int
	Points        []ConcurrencyPoint
	Validated     int  // queries checked row-identical vs in-process execution
	AllMatch      bool // every validated query matched
}

// Report renders the experiment.
func (r *ConcurrencyResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serving-layer concurrency (sf=%g, %d nodes, admission limit %d):\n",
		r.SF, r.Nodes, r.MaxConcurrent)
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %2d sessions  %4d queries in %-12v  %7.1f q/s\n",
			p.Sessions, p.Queries, p.Elapsed.Round(time.Millisecond), p.QPS)
	}
	status := "OK"
	if !r.AllMatch {
		status = "MISMATCH"
	}
	fmt.Fprintf(&sb, "  validation: %d remote results vs in-process execution: %s\n", r.Validated, status)
	return sb.String()
}

// Concurrency runs the serving-layer experiment: start vectorh-serve
// in-process over loopback TCP, then drive the SQL TPC-H workload from 1,
// 4 and 16 concurrent client sessions, recording aggregate queries/sec.
// Every session's first pass is validated row-identical (floats rounded —
// exchange arrival order perturbs the last bits) against in-process
// execution of the same statements.
func Concurrency(sf float64, nodes int) (*ConcurrencyResult, error) {
	const threads, partitions = 2, 6
	eng, err := NewEngine(nodes, threads, partitions)
	if err != nil {
		return nil, err
	}
	d := tpch.Generate(sf, 42)
	if err := tpch.LoadIntoEngine(eng, d, partitions); err != nil {
		return nil, err
	}
	db := &vectorh.DB{Engine: eng}

	var qs []int
	for q := range tpch.SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	want := make(map[int][]string, len(qs))
	for _, q := range qs {
		rows, err := db.QuerySQL(tpch.SQLQueries[q])
		if err != nil {
			return nil, fmt.Errorf("Q%02d reference: %w", q, err)
		}
		want[q] = normRows(rows)
	}

	res := &ConcurrencyResult{SF: sf, Nodes: nodes, MaxConcurrent: 8, AllMatch: true}
	srv := server.New(db, server.Options{MaxConcurrent: res.MaxConcurrent})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	const passes = 3 // each session runs the full workload this many times
	for _, sessions := range []int{1, 4, 16} {
		clients := make([]*server.Client, sessions)
		for i := range clients {
			c, err := server.Dial(addr.String())
			if err != nil {
				return nil, err
			}
			defer c.Close()
			clients[i] = c
		}
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		var mu sync.Mutex
		validated, mismatches := 0, 0
		start := time.Now()
		for _, c := range clients {
			wg.Add(1)
			go func(c *server.Client) {
				defer wg.Done()
				for pass := 0; pass < passes; pass++ {
					for _, q := range qs {
						r, err := c.Query(context.Background(), tpch.SQLQueries[q])
						if err != nil {
							errs <- fmt.Errorf("Q%02d: %w", q, err)
							return
						}
						if pass == 0 {
							match := eqStrings(normRows(r.Rows), want[q])
							mu.Lock()
							validated++
							if !match {
								mismatches++
							}
							mu.Unlock()
						}
					}
				}
				errs <- nil
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for range clients {
			if err := <-errs; err != nil {
				return nil, err
			}
		}
		total := sessions * passes * len(qs)
		res.Points = append(res.Points, ConcurrencyPoint{
			Sessions: sessions,
			Queries:  total,
			Elapsed:  elapsed,
			QPS:      float64(total) / elapsed.Seconds(),
		})
		res.Validated += validated
		if mismatches > 0 {
			res.AllMatch = false
		}
	}
	return res, nil
}

func normRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.6g|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
