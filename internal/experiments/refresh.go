package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"vectorh/internal/baseline"
	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
)

// RefreshQuery is one post-refresh validation: a TPC-H query run as SQL on
// VectorH compared row-for-row against the expected result recomputed over
// the refreshed data by the independent tuple-at-a-time baseline engine.
type RefreshQuery struct {
	Q       int
	Rows    int
	Match   bool
	Elapsed time.Duration
}

// RefreshResult holds the RF1/RF2-as-SQL experiment outcome.
type RefreshResult struct {
	SF                   float64
	RF1Orders, RF1Items  int64 // rows inserted by RF1
	RF2Orders, RF2Items  int64 // rows deleted by RF2
	RF1Time, RF2Time     time.Duration
	Statements           int
	PropagatedPartitions int
	Queries              []RefreshQuery
}

// AllMatch reports whether every validated query returned the expected rows.
func (r *RefreshResult) AllMatch() bool {
	for _, q := range r.Queries {
		if !q.Match {
			return false
		}
	}
	return true
}

// Report renders the experiment as text.
func (r *RefreshResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TPC-H refresh streams as SQL (sf=%g, %d statements):\n", r.SF, r.Statements)
	fmt.Fprintf(&sb, "  RF1 insert  %6d orders + %6d lineitems  %v\n", r.RF1Orders, r.RF1Items, r.RF1Time)
	fmt.Fprintf(&sb, "  RF2 delete  %6d orders + %6d lineitems  %v\n", r.RF2Orders, r.RF2Items, r.RF2Time)
	fmt.Fprintf(&sb, "  update propagation ran on %d partitions\n", r.PropagatedPartitions)
	sb.WriteString("  post-refresh validation vs recomputed expected results:\n")
	for _, q := range r.Queries {
		status := "OK"
		if !q.Match {
			status = "MISMATCH"
		}
		fmt.Fprintf(&sb, "    Q%02d %6d rows %-8s %v\n", q.Q, q.Rows, status, q.Elapsed)
	}
	return sb.String()
}

// Refresh reproduces the paper's §8 "Impact of Updates" workload end to end
// over the SQL front-end: RF1 (new orders + lineitems) and RF2 (deletes by
// order key) execute as INSERT/DELETE text through the PDT trickle-update
// path, with the flush threshold set low enough that update propagation
// (tail-insert appends and full partition rewrites) actually runs. The same
// refresh is applied to a baseline engine, and every TPC-H query with SQL
// text is then validated row-identically against the baseline's freshly
// recomputed answer.
func Refresh(sf float64, nodes int) (*RefreshResult, error) {
	d := tpch.Generate(sf, 13)
	count := int(1500 * sf)
	if count < 5 {
		count = 5
	}
	rf1Orders, rf1Items := tpch.RF1(d, count, 21)
	rf2 := tpch.RF2Keys(d, count, 22)

	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	eng, err := core.New(core.Config{
		Nodes:          names,
		ThreadsPerNode: 2,
		BlockSize:      1 << 20,
		Format:         colstore.Format{BlockSize: 64 << 10, BlocksPerChunk: 256, MaxRowsPerBlock: 8192},
		MsgBytes:       64 << 10,
		// Low flush threshold: the refresh volume must cross it so the
		// experiment exercises maybePropagate — tail-insert appends after
		// RF1 and full partition rewrites after RF2 — not just PDT merges.
		PDTFlushBytes: 512,
	})
	if err != nil {
		return nil, err
	}
	partitions := 2 * nodes
	if err := tpch.LoadIntoEngine(eng, d, partitions); err != nil {
		return nil, err
	}

	res := &RefreshResult{SF: sf}

	// RF1: inserts as SQL. The rendered statements reproduce the RF1
	// batches exactly (same generator, same seed).
	rf1Stmts := append(tpch.InsertSQL("orders", tpch.OrdersSchema, rf1Orders, 500),
		tpch.InsertSQL("lineitem", tpch.LineitemSchema, rf1Items, 500)...)
	t0 := time.Now()
	for _, s := range rf1Stmts {
		if _, err := sql.Exec(s, eng); err != nil {
			return nil, fmt.Errorf("RF1: %w", err)
		}
	}
	res.RF1Time = time.Since(t0)
	res.RF1Orders = int64(rf1Orders.Len())
	res.RF1Items = int64(rf1Items.Len())

	// RF2: deletes as SQL.
	t0 = time.Now()
	for _, s := range tpch.RF2SQL(rf2) {
		n, err := sql.Exec(s, eng)
		if err != nil {
			return nil, fmt.Errorf("RF2: %w", err)
		}
		if strings.Contains(s, "from orders") {
			res.RF2Orders = n
		} else {
			res.RF2Items = n
		}
	}
	res.RF2Time = time.Since(t0)
	res.Statements = len(rf1Stmts) + 2

	// Count partitions whose deltas were flushed back into the column
	// store (generation bump = rewrite; empty PDTs + rows beyond the load
	// would mean tail append, which ResetAfterFlush also leaves visible as
	// stable rows).
	for _, table := range []string{"orders", "lineitem"} {
		for p := 0; p < partitions; p++ {
			if m := eng.PartitionMetaForTest(table, p); m != nil && m.Gen > 0 {
				res.PropagatedPartitions++
			}
		}
	}

	// Expected results: the same refresh applied to the baseline engine
	// through its own delta mechanism, then each query recomputed there.
	be := baseline.New(baseline.Hive)
	if err := tpch.LoadIntoBaseline(be, d); err != nil {
		return nil, err
	}
	if err := be.InsertRows("orders", rf1Orders); err != nil {
		return nil, err
	}
	if err := be.InsertRows("lineitem", rf1Items); err != nil {
		return nil, err
	}
	if err := be.DeleteByKey("orders", rf2); err != nil {
		return nil, err
	}
	if err := be.DeleteByKey("lineitem", rf2); err != nil {
		return nil, err
	}

	var qs []int
	for q := range tpch.SQLQueries {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		p, err := tpch.BuildQuery(q, be)
		if err != nil {
			return nil, fmt.Errorf("Q%d build: %w", q, err)
		}
		want, err := be.Query(p)
		if err != nil {
			return nil, fmt.Errorf("Q%d baseline: %w", q, err)
		}
		t0 = time.Now()
		n, err := sql.Compile(tpch.SQLQueries[q], eng)
		if err != nil {
			return nil, fmt.Errorf("Q%d compile: %w", q, err)
		}
		got, err := eng.Query(n)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %w", q, err)
		}
		res.Queries = append(res.Queries, RefreshQuery{
			Q: q, Rows: len(got), Elapsed: time.Since(t0),
			Match: rowsEqual(got, want),
		})
	}
	return res, nil
}

// rowsEqual compares result sets order-insensitively with floats rounded,
// the same normalization the engine-vs-baseline tests use.
func rowsEqual(got, want [][]any) bool {
	if len(got) != len(want) {
		return false
	}
	ng, nw := normalizeRows(got), normalizeRows(want)
	for i := range ng {
		if ng[i] != nw[i] {
			return false
		}
	}
	return true
}

func normalizeRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			switch x := v.(type) {
			case float64:
				p := math.Pow(10, 4)
				fmt.Fprintf(&sb, "%.4f|", math.Round(x*p)/p)
			default:
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}
