// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each experiment
// returns a plain-text report in the shape of the corresponding paper
// artifact; bench_test.go wraps them as benchmarks and cmd/vectorh-bench
// prints them.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"vectorh/internal/affinity"
	"vectorh/internal/baseline"
	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/hadoopfmt"
	"vectorh/internal/hdfs"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
	"vectorh/internal/spark"
	"vectorh/internal/tpch"
	"vectorh/internal/vector"
)

// NewEngine builds a benchmark-sized VectorH instance.
func NewEngine(nodes, threads, partitions int) (*core.Engine, error) {
	return core.New(benchConfig(nodes, threads))
}

// NewEngineNoCache builds the same instance with the shared decoded-block
// cache disabled, for experiments that meter physical decode work per
// iteration — with the cache on, every pass after the first would read and
// decode (almost) nothing and the counters would measure cache hits, not
// scan selectivity.
func NewEngineNoCache(nodes, threads, partitions int) (*core.Engine, error) {
	cfg := benchConfig(nodes, threads)
	cfg.BlockCacheBytes = -1
	return core.New(cfg)
}

func benchConfig(nodes, threads int) core.Config {
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	return core.Config{
		Nodes:          names,
		ThreadsPerNode: threads,
		BlockSize:      1 << 20,
		Format:         colstore.Format{BlockSize: 64 << 10, BlocksPerChunk: 256, MaxRowsPerBlock: 8192},
		MsgBytes:       64 << 10,
	}
}

// --- E1: Figure 1 — data format micro-benchmarks ---

// Fig1Row is one point of the Figure-1 series.
type Fig1Row struct {
	System      string
	Selectivity float64
	HotTime     time.Duration
	BytesRead   int64
}

// Fig1Result aggregates the three Figure-1 charts.
type Fig1Result struct {
	Rows  []Fig1Row
	Sizes map[string]map[string]int64 // system -> column -> bytes
}

// Fig1 reproduces the SELECT max(l_linenumber) WHERE l_shipdate < X
// micro-benchmark over a lineitem sorted on l_shipdate, comparing the
// VectorH format against the Parquet-like and ORC-like readers under their
// respective skipping abilities.
func Fig1(sf float64) (*Fig1Result, error) {
	d := tpch.Generate(sf, 1)
	li := d.Tables["lineitem"]
	// Sort lineitem on l_shipdate, as in the paper's setup.
	shipIdx := tpch.LineitemSchema.Index("l_shipdate")
	perm := make([]int32, li.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	ship := li.Col(shipIdx).Int32s()
	sort.SliceStable(perm, func(a, b int) bool { return ship[perm[a]] < ship[perm[b]] })
	sorted := (&vector.Batch{Vecs: li.Vecs, Sel: perm}).Compact()

	res := &Fig1Result{Sizes: map[string]map[string]int64{}}
	minDate, maxDate := ship[perm[0]], ship[perm[len(perm)-1]]
	cutoffs := []float64{0.1, 0.3, 0.6, 0.9}

	// VectorH format: a single-node engine with a clustered table.
	eng, err := NewEngine(1, 2, 1)
	if err != nil {
		return nil, err
	}
	info := tpch.DDL(sf, 1)[7] // lineitem
	info.Partitions = 1
	info.ClusteredOn = "l_shipdate"
	if err := eng.CreateTable(info); err != nil {
		return nil, err
	}
	if err := eng.Load("lineitem", []*vector.Batch{sorted}); err != nil {
		return nil, err
	}
	for _, sel := range cutoffs {
		x := minDate + int32(float64(maxDate-minDate)*sel)
		q := plan.Aggregate(
			plan.Filter(plan.Scan("lineitem", "l_linenumber", "l_shipdate"),
				plan.LT(plan.Col("l_shipdate"), plan.DateVal(x))).
				Skip("l_shipdate", math.MinInt32, int64(x)),
			nil, plan.A("m", plan.Max, plan.Col("l_linenumber")))
		if _, err := eng.Query(q); err != nil { // warm
			return nil, err
		}
		eng.FS().ResetStats()
		start := time.Now()
		if _, err := eng.Query(q); err != nil {
			return nil, err
		}
		st := eng.FS().Stats()
		res.Rows = append(res.Rows, Fig1Row{"vectorh", sel, time.Since(start), st.LocalBytesRead + st.RemoteBytesRead})
	}
	// Column size chart for VectorH.
	res.Sizes["vectorh"] = map[string]int64{}
	tInfo, _ := eng.Table("lineitem")
	_ = tInfo
	for _, col := range []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_shipdate", "l_returnflag"} {
		var total int64
		meta := enginePartMeta(eng, "lineitem")
		if c, err := meta.Col(col); err == nil {
			for _, b := range c.Blocks {
				total += int64(b.Bytes)
			}
		}
		res.Sizes["vectorh"][col] = total
	}

	// Hadoop formats, value-at-a-time, per Fig-1 system personalities.
	systems := []struct {
		name string
		kind hadoopfmt.Kind
		mode hadoopfmt.SkipMode
	}{
		{"impala(parquet)", hadoopfmt.Parquet, hadoopfmt.NoSkip},
		{"presto(parquet)", hadoopfmt.Parquet, hadoopfmt.SkipCPU},
		{"presto(orc)", hadoopfmt.ORC, hadoopfmt.SkipCPU},
	}
	for _, sys := range systems {
		fs := hdfs.NewCluster([]string{"b1"}, hdfs.Config{BlockSize: 1 << 20, Replication: 1})
		w, err := hadoopfmt.NewWriter(fs, "/li", "b1", tpch.LineitemSchema, hadoopfmt.Options{Kind: sys.kind, RowGroupRows: 4096})
		if err != nil {
			return nil, err
		}
		if err := w.Append(sorted); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		r, err := hadoopfmt.Open(fs, "/li", "b1")
		if err != nil {
			return nil, err
		}
		if _, ok := res.Sizes[sys.name]; !ok {
			res.Sizes[sys.name] = map[string]int64{}
			for _, col := range []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_shipdate", "l_returnflag"} {
				n, _ := r.ColumnBytes(col)
				res.Sizes[sys.name][col] = n
			}
		}
		for _, sel := range cutoffs {
			x := int64(minDate) + int64(float64(maxDate-minDate)*sel)
			run := func() error {
				it, err := r.Scan([]string{"l_linenumber", "l_shipdate"},
					&hadoopfmt.RangePred{Col: "l_shipdate", Lo: math.MinInt32, Hi: x - 1}, sys.mode)
				if err != nil {
					return err
				}
				maxLN := int32(math.MinInt32)
				for {
					row, err := it.Next()
					if err != nil {
						return err
					}
					if row == nil {
						return nil
					}
					if v := row[0].(int32); v > maxLN {
						maxLN = v
					}
				}
			}
			if err := run(); err != nil { // warm
				return nil, err
			}
			fs.ResetStats()
			start := time.Now()
			if err := run(); err != nil {
				return nil, err
			}
			st := fs.Stats()
			res.Rows = append(res.Rows, Fig1Row{sys.name, sel, time.Since(start), st.LocalBytesRead + st.RemoteBytesRead})
		}
	}
	return res, nil
}

func enginePartMeta(e *core.Engine, table string) *colstore.PartitionMeta {
	// Benchmark-only helper: peek at partition 0's metadata via a scan of
	// zero columns is not possible, so experiments reach through a small
	// accessor added for reporting.
	return e.PartitionMetaForTest(table, 0)
}

// Report renders the three Figure-1 charts as text.
func (r *Fig1Result) Report() string {
	var sb strings.Builder
	sb.WriteString("Figure 1a) hot query time by selectivity\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s sel=%.1f  time=%8.2fms\n", row.System, row.Selectivity, float64(row.HotTime.Microseconds())/1000)
	}
	sb.WriteString("Figure 1b) data read by selectivity\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s sel=%.1f  read=%8.1fKB\n", row.System, row.Selectivity, float64(row.BytesRead)/1024)
	}
	sb.WriteString("Figure 1c) compressed column sizes\n")
	var systems []string
	for s := range r.Sizes {
		systems = append(systems, s)
	}
	sort.Strings(systems)
	for _, s := range systems {
		var total int64
		for _, b := range r.Sizes[s] {
			total += b
		}
		fmt.Fprintf(&sb, "  %-18s total=%8.1fKB", s, float64(total)/1024)
		var cols []string
		for c := range r.Sizes[s] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			fmt.Fprintf(&sb, "  %s=%.0fKB", strings.TrimPrefix(c, "l_"), float64(r.Sizes[s][c])/1024)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- E2/E3: Figure 2 — affinity before/after node failure ---

// Fig2 reproduces the partition-affinity walkthrough: 12 partitions on 4
// nodes with R=3, then a failure of node4 with min-cost re-replication and
// responsibility reassignment.
func Fig2() (string, error) {
	workers := []string{"node1", "node2", "node3", "node4"}
	var parts []string
	for i := 1; i <= 12; i++ {
		parts = append(parts, fmt.Sprintf("R%02d", i))
	}
	var sb strings.Builder
	initial := affinity.InitialMapping(parts, workers, 3)
	sb.WriteString("initial affinity (partition: primary, copies):\n")
	for _, p := range parts {
		fmt.Fprintf(&sb, "  %s: %v\n", p, initial[p])
	}
	survivors := workers[:3]
	isLocal := func(part, node string) bool {
		if node == "node4" {
			return false
		}
		for _, n := range initial[part] {
			if n == node {
				return true
			}
		}
		return false
	}
	next, err := affinity.ComputeAffinity(parts, survivors, 3, isLocal)
	if err != nil {
		return "", err
	}
	resp, err := affinity.ComputeResponsibility(parts, survivors, func(p, n string) bool {
		for _, x := range next[p] {
			if x == n {
				return true
			}
		}
		return false
	})
	if err != nil {
		return "", err
	}
	moves := affinity.Moves(initial, next)
	fmt.Fprintf(&sb, "after node4 failure: %d partition copies re-replicated: %v\n", len(moves), moves)
	sb.WriteString("responsibility assignment:\n")
	counts := map[string]int{}
	for _, p := range parts {
		fmt.Fprintf(&sb, "  %s -> %s\n", p, resp[p])
		counts[resp[p]]++
	}
	fmt.Fprintf(&sb, "balance: %v\n", counts)
	return sb.String(), nil
}

// --- E4: Figure 5 / §5 — rewrite-rule ablation ---

// AblationResult holds the rule-ablation timings (paper: 5.02 / 5.64 / 5.67
// / 25.51 / 26.14 seconds).
type AblationResult struct {
	Name    string
	Elapsed time.Duration
}

// Fig5Ablation runs the §5 example query (items ⋈ orders ⋈ supplier, group
// by supplier, top 10) with rewrite rules toggled.
func Fig5Ablation(sf float64, nodes int) ([]AblationResult, error) {
	eng, err := NewEngine(nodes, 2, 2*nodes)
	if err != nil {
		return nil, err
	}
	d := tpch.Generate(sf, 5)
	if err := tpch.LoadIntoEngine(eng, d, 2*nodes); err != nil {
		return nil, err
	}
	q := plan.Top(
		plan.Aggregate(
			plan.Join(plan.InnerJoin,
				plan.Join(plan.InnerJoin,
					plan.Filter(plan.Scan("lineitem", "l_orderkey", "l_suppkey", "l_discount"),
						plan.GT(plan.Dec("l_discount"), plan.Float(0.03))),
					plan.Filter(plan.Scan("orders", "o_orderkey", "o_orderdate"),
						plan.Between(plan.Col("o_orderdate"), plan.Date("1995-03-05"), plan.Date("1997-03-05"))),
					[]string{"l_orderkey"}, []string{"o_orderkey"}),
				plan.Scan("supplier", "s_suppkey", "s_name"),
				[]string{"l_suppkey"}, []string{"s_suppkey"}),
			[]string{"s_suppkey", "s_name"},
			plan.AStar("l_count")),
		10, plan.Asc(plan.Col("l_count")))

	off := false
	configs := []struct {
		name string
		opts core.QueryOptions
	}{
		{"all rules", core.QueryOptions{}},
		{"no partial aggregation", core.QueryOptions{PartialAgg: &off}},
		{"no replicated build", core.QueryOptions{ReplicateBuild: &off}},
		{"no local join", core.QueryOptions{LocalJoin: &off}},
		{"no rules", core.QueryOptions{LocalJoin: &off, ReplicateBuild: &off, PartialAgg: &off}},
	}
	var out []AblationResult
	for _, cfg := range configs {
		if _, err := eng.QueryOpts(q, cfg.opts); err != nil { // warm
			return nil, err
		}
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			res, err := eng.QueryOpts(q, cfg.opts)
			if err != nil {
				return nil, err
			}
			if res.Elapsed < best {
				best = res.Elapsed
			}
		}
		out = append(out, AblationResult{cfg.name, best})
	}
	return out, nil
}

// --- E5: §7 — load paths ---

// LoadPathResult is one load strategy's outcome.
type LoadPathResult struct {
	Name        string
	Elapsed     time.Duration
	LocalBytes  int64
	RemoteBytes int64
}

// LoadPaths reproduces the §7 comparison: plain vwload (master reads
// everything), locality-tweaked vwload, and the Spark connector.
func LoadPaths(files, rowsPerFile int) ([]LoadPathResult, error) {
	schema := vector.Schema{
		{Name: "k", Type: vector.TInt64}, {Name: "a", Type: vector.TInt64},
		{Name: "b", Type: vector.TInt64}, {Name: "c", Type: vector.TInt64},
	}
	setup := func() (*core.Engine, []string, error) {
		eng, err := core.New(core.Config{
			Nodes: []string{"node1", "node2", "node3"}, Replication: 1,
			BlockSize: 1 << 18, Format: colstore.Format{BlockSize: 32 << 10, BlocksPerChunk: 64},
		})
		if err != nil {
			return nil, nil, err
		}
		if err := eng.CreateTable(rewriter.TableInfo{
			Name: "t", Schema: schema, PartitionKey: "k", Partitions: 3,
		}); err != nil {
			return nil, nil, err
		}
		nodes := eng.Nodes()
		var paths []string
		id := 0
		for f := 0; f < files; f++ {
			var sb strings.Builder
			for r := 0; r < rowsPerFile; r++ {
				fmt.Fprintf(&sb, "%d|%d|%d|%d\n", id, id*2, id*3, id*5)
				id++
			}
			p := fmt.Sprintf("/csv/in%02d.tbl", f)
			if err := eng.FS().WriteFile(p, nodes[f%len(nodes)], []byte(sb.String())); err != nil {
				return nil, nil, err
			}
			paths = append(paths, p)
		}
		return eng, paths, nil
	}
	var out []LoadPathResult
	run := func(name string, load func(e *core.Engine, paths []string) error) error {
		eng, paths, err := setup()
		if err != nil {
			return err
		}
		eng.FS().ResetStats()
		start := time.Now()
		if err := load(eng, paths); err != nil {
			return err
		}
		st := eng.FS().Stats()
		out = append(out, LoadPathResult{name, time.Since(start), st.LocalBytesRead, st.RemoteBytesRead})
		return nil
	}
	if err := run("vwload (remote reads)", func(e *core.Engine, paths []string) error {
		return spark.VWLoad(e, "t", paths)
	}); err != nil {
		return nil, err
	}
	if err := run("vwload (tweaked local)", func(e *core.Engine, paths []string) error {
		return spark.VWLoadLocal(e, "t", paths)
	}); err != nil {
		return nil, err
	}
	if err := run("spark connector", func(e *core.Engine, paths []string) error {
		rdd, err := spark.TextFileRDD(e.FS(), paths)
		if err != nil {
			return err
		}
		_, err = spark.ConnectorLoad(e, "t", rdd)
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// --- E6/E7: Figure 7 — TPC-H comparison ---

// TPCHResult holds per-query timings for every system.
type TPCHResult struct {
	Queries []int
	Times   map[string][]time.Duration // system -> per-query
}

// TPCH runs the 22 queries on VectorH and the chosen baseline flavors.
func TPCH(sf float64, nodes int, flavors []baseline.Flavor) (*TPCHResult, error) {
	d := tpch.Generate(sf, 9)
	eng, err := NewEngine(nodes, 2, 2*nodes)
	if err != nil {
		return nil, err
	}
	if err := tpch.LoadIntoEngine(eng, d, 2*nodes); err != nil {
		return nil, err
	}
	res := &TPCHResult{Times: map[string][]time.Duration{}}
	for q := 1; q <= tpch.NumQueries; q++ {
		res.Queries = append(res.Queries, q)
	}
	runAll := func(name string, r tpch.Runner) error {
		for _, q := range res.Queries {
			p, err := tpch.BuildQuery(q, r)
			if err != nil {
				return fmt.Errorf("%s Q%d build: %w", name, q, err)
			}
			start := time.Now()
			if _, err := r.Query(p); err != nil {
				return fmt.Errorf("%s Q%d: %w", name, q, err)
			}
			res.Times[name] = append(res.Times[name], time.Since(start))
		}
		return nil
	}
	if err := runAll("VectorH", eng); err != nil {
		return nil, err
	}
	for _, f := range flavors {
		be := baseline.New(f)
		if err := tpch.LoadIntoBaseline(be, d); err != nil {
			return nil, err
		}
		if err := runAll(string(f), be); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Report renders the Figure-7 table plus the speedup chart rows.
func (r *TPCHResult) Report() string {
	var sb strings.Builder
	var systems []string
	for s := range r.Times {
		if s != "VectorH" {
			systems = append(systems, s)
		}
	}
	sort.Strings(systems)
	systems = append([]string{"VectorH"}, systems...)
	sb.WriteString("TPC-H results (milliseconds):\n        ")
	for _, q := range r.Queries {
		fmt.Fprintf(&sb, "%8s", fmt.Sprintf("Q%d", q))
	}
	sb.WriteByte('\n')
	for _, s := range systems {
		fmt.Fprintf(&sb, "%-8s", s)
		for i := range r.Queries {
			fmt.Fprintf(&sb, "%8.1f", float64(r.Times[s][i].Microseconds())/1000)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("how many times faster is VectorH:\n        ")
	for _, q := range r.Queries {
		fmt.Fprintf(&sb, "%8s", fmt.Sprintf("Q%d", q))
	}
	sb.WriteByte('\n')
	for _, s := range systems[1:] {
		fmt.Fprintf(&sb, "%-8s", s)
		for i := range r.Queries {
			ratio := float64(r.Times[s][i]) / float64(r.Times["VectorH"][i])
			fmt.Fprintf(&sb, "%8.1f", ratio)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GeoMean computes the geometric mean of durations.
func GeoMean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ds {
		sum += math.Log(float64(d))
	}
	return time.Duration(math.Exp(sum / float64(len(ds))))
}

// --- E8: update impact (RF1/RF2 + GeoDiff) ---

// UpdateImpactResult is the bottom block of Figure 7.
type UpdateImpactResult struct {
	System  string
	RF1     time.Duration
	RF2     time.Duration
	GeoDiff float64 // geomean(after)/geomean(before), 1.0 = unaffected
}

// UpdateImpact measures query performance before/after the refresh
// functions on VectorH (PDTs) and the Hive-like baseline (delta merge).
func UpdateImpact(sf float64, nodes int, queries []int) ([]UpdateImpactResult, error) {
	d := tpch.Generate(sf, 13)
	rf1Orders, rf1Items := tpch.RF1(d, int(1500*sf), 21)
	rf2 := tpch.RF2Keys(d, int(1500*sf), 22)

	var out []UpdateImpactResult

	runQueries := func(r tpch.Runner) ([]time.Duration, error) {
		var ds []time.Duration
		for _, q := range queries {
			p, err := tpch.BuildQuery(q, r)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := r.Query(p); err != nil {
				return nil, err
			}
			ds = append(ds, time.Since(start))
		}
		return ds, nil
	}

	// VectorH.
	eng, err := NewEngine(nodes, 2, 2*nodes)
	if err != nil {
		return nil, err
	}
	if err := tpch.LoadIntoEngine(eng, d, 2*nodes); err != nil {
		return nil, err
	}
	before, err := runQueries(eng)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := eng.InsertRows("orders", rf1Orders); err != nil {
		return nil, err
	}
	if err := eng.InsertRows("lineitem", rf1Items); err != nil {
		return nil, err
	}
	rf1Time := time.Since(t0)
	t0 = time.Now()
	if _, err := eng.DeleteWhere("orders", plan.InInt(plan.Col("o_orderkey"), rf2...)); err != nil {
		return nil, err
	}
	if _, err := eng.DeleteWhere("lineitem", plan.InInt(plan.Col("l_orderkey"), rf2...)); err != nil {
		return nil, err
	}
	rf2Time := time.Since(t0)
	after, err := runQueries(eng)
	if err != nil {
		return nil, err
	}
	out = append(out, UpdateImpactResult{
		System: "VectorH", RF1: rf1Time, RF2: rf2Time,
		GeoDiff: float64(GeoMean(after)) / float64(GeoMean(before)),
	})

	// Hive-like.
	be := baseline.New(baseline.Hive)
	if err := tpch.LoadIntoBaseline(be, d); err != nil {
		return nil, err
	}
	before, err = runQueries(be)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	if err := be.InsertRows("orders", rf1Orders); err != nil {
		return nil, err
	}
	if err := be.InsertRows("lineitem", rf1Items); err != nil {
		return nil, err
	}
	rf1Time = time.Since(t0)
	t0 = time.Now()
	if err := be.DeleteByKey("orders", rf2); err != nil {
		return nil, err
	}
	if err := be.DeleteByKey("lineitem", rf2); err != nil {
		return nil, err
	}
	rf2Time = time.Since(t0)
	after, err = runQueries(be)
	if err != nil {
		return nil, err
	}
	out = append(out, UpdateImpactResult{
		System: "Hive", RF1: rf1Time, RF2: rf2Time,
		GeoDiff: float64(GeoMean(after)) / float64(GeoMean(before)),
	})
	return out, nil
}

// --- E9: Appendix — Q1 profile ---

// ProfileQ1 runs TPC-H Q1 with per-operator profiling and renders the
// Appendix-style report.
func ProfileQ1(sf float64, nodes int) (string, error) {
	d := tpch.Generate(sf, 17)
	eng, err := NewEngine(nodes, 2, 2*nodes)
	if err != nil {
		return "", err
	}
	if err := tpch.LoadIntoEngine(eng, d, 2*nodes); err != nil {
		return "", err
	}
	p, err := tpch.BuildQuery(1, eng)
	if err != nil {
		return "", err
	}
	res, err := eng.QueryOpts(p, core.QueryOptions{Profile: true})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "TPC-H Q1 wall clock: %v\n", res.Elapsed)
	sb.WriteString(res.Explain)
	sb.WriteString(core.FormatProfile(res.Profile, 24))
	return sb.String(), nil
}
