package experiments

import (
	"fmt"
	"strings"
	"time"

	"vectorh/internal/plan"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
)

// joinOrderQueries are the join-heavy TPC-H queries where the planner's
// stats-driven greedy ordering actually has room to deviate from the
// hand-written plans: five-way-plus join pipelines (Q02/Q05/Q07/Q08/Q09)
// and the large-build outliers Q03/Q10/Q21. The rest of the workload is
// scan- or aggregation-bound and orders identically either way.
var joinOrderQueries = []int{2, 3, 5, 7, 8, 9, 10, 21}

// JoinOrderPoint is one query's hand-ordered vs optimizer-ordered
// measurement: the hand-built plan encodes the join order a person chose in
// internal/tpch/queries.go, the SQL plan gets whatever order the
// stats-driven pass in internal/sql picks.
type JoinOrderPoint struct {
	Q      int
	Rows   int
	HandNs int64 // ns/op, hand-built plan
	SQLNs  int64 // ns/op, SQL text through the optimizer
	Match  bool  // both plans returned identical rows
}

// Ratio is optimizer time over hand time; 1.0 means the chosen order costs
// the same as the hand-written one.
func (p JoinOrderPoint) Ratio() float64 {
	if p.HandNs == 0 {
		return 0
	}
	return float64(p.SQLNs) / float64(p.HandNs)
}

// JoinOrderResult is the full comparison.
type JoinOrderResult struct {
	SF     float64
	Points []JoinOrderPoint
}

// AllMatch reports whether every query validated row-identical.
func (r *JoinOrderResult) AllMatch() bool {
	for _, p := range r.Points {
		if !p.Match {
			return false
		}
	}
	return true
}

// Report renders the comparison as text.
func (r *JoinOrderResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "join order: hand-written vs optimizer-chosen (sf=%g):\n", r.SF)
	fmt.Fprintf(&sb, "  %-5s %12s %12s %7s %6s\n", "query", "hand ns/op", "opt ns/op", "ratio", "rows")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  Q%02d   %12d %12d %6.2fx %6d\n", p.Q, p.HandNs, p.SQLNs, p.Ratio(), p.Rows)
	}
	return sb.String()
}

// JoinOrder measures each join-heavy TPC-H query twice — once from the
// hand-built plan with its hand-written join order, once from SQL text
// through the stats-driven ordering pass — validating that both return
// identical rows. Plans are compiled once and executed repeatedly, so the
// measurement isolates the execution cost of the chosen join order.
func JoinOrder(sf float64, nodes int) (*JoinOrderResult, error) {
	const threads, partitions = 2, 6
	eng, err := NewEngine(nodes, threads, partitions)
	if err != nil {
		return nil, err
	}
	d := tpch.Generate(sf, 9)
	if err := tpch.LoadIntoEngine(eng, d, partitions); err != nil {
		return nil, err
	}

	res := &JoinOrderResult{SF: sf}
	for _, q := range joinOrderQueries {
		hand, err := tpch.BuildQuery(q, eng)
		if err != nil {
			return nil, fmt.Errorf("Q%02d build: %w", q, err)
		}
		opt, err := sql.Compile(tpch.SQLQueries[q], eng)
		if err != nil {
			return nil, fmt.Errorf("Q%02d compile: %w", q, err)
		}
		pt := JoinOrderPoint{Q: q}

		// Warm both plans once and validate against each other.
		handRows, err := eng.Query(hand)
		if err != nil {
			return nil, fmt.Errorf("Q%02d hand: %w", q, err)
		}
		optRows, err := eng.Query(opt)
		if err != nil {
			return nil, fmt.Errorf("Q%02d optimizer: %w", q, err)
		}
		pt.Rows = len(handRows)
		pt.Match = rowsEqual(optRows, handRows)

		if pt.HandNs, err = measurePlan(eng, hand); err != nil {
			return nil, fmt.Errorf("Q%02d hand: %w", q, err)
		}
		if pt.SQLNs, err = measurePlan(eng, opt); err != nil {
			return nil, fmt.Errorf("Q%02d optimizer: %w", q, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// measurePlan executes a compiled plan repeatedly and returns ns/op. The
// repetition count is calibrated from a timing run so fast queries average
// over enough iterations for a stable hand-vs-optimizer ratio.
func measurePlan(eng interface {
	Query(plan.Node) ([][]any, error)
}, p plan.Node) (int64, error) {
	const budget = 400 * time.Millisecond
	t0 := time.Now()
	if _, err := eng.Query(p); err != nil {
		return 0, err
	}
	once := time.Since(t0)
	n := 3
	if once > 0 {
		if k := int(budget / once); k > n {
			n = k
		}
	}
	if n > 100 {
		n = 100
	}
	t0 = time.Now()
	for i := 0; i < n; i++ {
		if _, err := eng.Query(p); err != nil {
			return 0, err
		}
	}
	return time.Since(t0).Nanoseconds() / int64(n), nil
}
