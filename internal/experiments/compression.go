package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"vectorh/internal/core"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
)

// CompressionPoint is one target query measured with compressed-domain
// execution on (dictionary verdicts, code-space sieves and join/group keys,
// frame-bounds skips) and off (fully materialized value-space pipeline),
// with the physical decode work of each.
type CompressionPoint struct {
	Query string
	Rows  int

	// Code-space pipeline.
	NsPerOp           int64
	AllocsPerOp       int64
	BytesDecoded      int64
	BytesMaterialized int64
	BytesSkipped      int64
	SpansPruned       int64

	// Value-space pipeline.
	OffNsPerOp           int64
	OffBytesDecoded      int64
	OffBytesMaterialized int64
	OffBytesSkipped      int64
	OffSpansPruned       int64

	Match bool // both pipelines returned the same rows
}

// CompressionTable is one table's bytes-on-disk: raw (decoded value bytes)
// against the encoded block payloads actually stored.
type CompressionTable struct {
	Table        string
	RawBytes     int64
	EncodedBytes int64
}

// Ratio is raw over encoded (higher = better compression).
func (t CompressionTable) Ratio() float64 {
	if t.EncodedBytes == 0 {
		return 0
	}
	return float64(t.RawBytes) / float64(t.EncodedBytes)
}

// CompressionResult is the full execute-on-compressed-data measurement.
type CompressionResult struct {
	SF      float64
	Storage []CompressionTable
	Points  []CompressionPoint
}

// AllMatch reports whether every query validated.
func (r *CompressionResult) AllMatch() bool {
	for _, p := range r.Points {
		if !p.Match {
			return false
		}
	}
	return true
}

// Report renders the measurement as text.
func (r *CompressionResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "executing on compressed data (sf=%g), code-space vs value-space pipelines:\n", r.SF)
	fmt.Fprintf(&sb, "  storage (bytes on disk):\n")
	for _, t := range r.Storage {
		fmt.Fprintf(&sb, "    %-10s %5.2fx  (%d raw -> %d encoded)\n",
			t.Table, t.Ratio(), t.RawBytes, t.EncodedBytes)
	}
	fmt.Fprintf(&sb, "  %-4s %10s %10s %12s %12s %12s %12s %12s %8s\n",
		"", "ns/op", "off ns/op", "decoded", "off decoded", "mat", "off mat", "skipped", "pruned")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %-4s %10d %10d %12d %12d %12d %12d %12d %8d\n",
			p.Query, p.NsPerOp, p.OffNsPerOp, p.BytesDecoded, p.OffBytesDecoded,
			p.BytesMaterialized, p.OffBytesMaterialized, p.BytesSkipped, p.SpansPruned)
	}
	return sb.String()
}

// compressionQueries are the target queries: Q01/Q06/Q12 are scan-dominated
// with date/quantity range predicates (frame-bounds verdicts), Q13/Q16 group
// and join on strings (dictionary-code execution).
var compressionQueries = []int{1, 6, 12, 13, 16}

// Compression measures the execute-on-compressed-data path over the TPC-H
// target queries: per-table bytes-on-disk, then per query the decode bytes,
// skipped bytes, pruned spans and per-op cost with compressed-domain
// execution on and off, validating row-identical results.
func Compression(sf float64, nodes int) (*CompressionResult, error) {
	// No block cache: this experiment meters decode work per iteration.
	eng, err := NewEngineNoCache(nodes, 2, 2*nodes)
	if err != nil {
		return nil, err
	}
	d := tpch.Generate(sf, 9)
	if err := tpch.LoadIntoEngine(eng, d, 2*nodes); err != nil {
		return nil, err
	}

	res := &CompressionResult{SF: sf}
	for _, t := range eng.TableStorage() {
		res.Storage = append(res.Storage, CompressionTable{
			Table: t.Table, RawBytes: t.RawBytes, EncodedBytes: t.EncodedBytes,
		})
	}

	for _, q := range compressionQueries {
		p, err := sql.Compile(tpch.SQLQueries[q], eng)
		if err != nil {
			return nil, fmt.Errorf("Q%02d: %w", q, err)
		}
		pt := CompressionPoint{Query: fmt.Sprintf("Q%02d", q)}

		on, off := true, false
		run := func(code *bool) ([][]any, error) {
			r, err := eng.QueryOpts(p, core.QueryOptions{CompressedExec: code})
			if err != nil {
				return nil, err
			}
			return r.Rows, nil
		}
		// Warm both paths once and validate them against each other: same
		// engine, same rows, only the execution domain differs.
		rowsOn, err := run(&on)
		if err != nil {
			return nil, fmt.Errorf("Q%02d code-space: %w", q, err)
		}
		rowsOff, err := run(&off)
		if err != nil {
			return nil, fmt.Errorf("Q%02d value-space: %w", q, err)
		}
		pt.Match = rowsEqual(rowsOn, rowsOff)
		pt.Rows = len(rowsOn)

		reps := 5
		measure := func(code *bool) (nsPerOp, allocsPerOp, decoded, materialized, skipped, pruned int64, err error) {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			s0 := eng.ScanStats()
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if _, err = run(code); err != nil {
					return
				}
			}
			elapsed := time.Since(t0)
			s1 := eng.ScanStats()
			runtime.ReadMemStats(&m1)
			n := int64(reps)
			return elapsed.Nanoseconds() / n, int64(m1.Mallocs-m0.Mallocs) / n,
				(s1.BytesDecoded - s0.BytesDecoded) / n,
				(s1.BytesMaterialized - s0.BytesMaterialized) / n,
				(s1.BytesSkipped - s0.BytesSkipped) / n,
				(s1.SpansPruned - s0.SpansPruned) / n, nil
		}
		if pt.NsPerOp, pt.AllocsPerOp, pt.BytesDecoded, pt.BytesMaterialized, pt.BytesSkipped, pt.SpansPruned, err = measure(&on); err != nil {
			return nil, err
		}
		if pt.OffNsPerOp, _, pt.OffBytesDecoded, pt.OffBytesMaterialized, pt.OffBytesSkipped, pt.OffSpansPruned, err = measure(&off); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
