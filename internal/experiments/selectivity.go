package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"vectorh/internal/core"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
)

// SelectivityPoint is one predicate-selectivity measurement of the
// late-materialized scan path: the Q6-shaped lineitem scan at one date
// window, with the pushdown pipeline's physical work (blocks read, bytes
// decoded, spans pruned before payload decode) next to the
// Select-above-scan pipeline's.
type SelectivityPoint struct {
	Label       string  // date window description
	Selectivity float64 // fraction of lineitem rows qualifying
	Rows        int64   // qualifying rows

	// Pushdown pipeline (predicates evaluated inside the scan).
	NsPerOp      int64
	AllocsPerOp  int64
	BlocksRead   int64
	BytesDecoded int64
	SpansPruned  int64

	// Select-above-scan pipeline (pushdown disabled).
	OffNsPerOp      int64
	OffBlocksRead   int64
	OffBytesDecoded int64

	Match bool // both pipelines returned the same aggregate
}

// SelectivityResult is the full sweep.
type SelectivityResult struct {
	SF     float64
	Rows   int64 // lineitem rows
	Points []SelectivityPoint
}

// AllMatch reports whether every point validated.
func (r *SelectivityResult) AllMatch() bool {
	for _, p := range r.Points {
		if !p.Match {
			return false
		}
	}
	return true
}

// Report renders the sweep as text.
func (r *SelectivityResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scan selectivity sweep (sf=%g, %d lineitem rows), pushdown vs select-above-scan:\n", r.SF, r.Rows)
	fmt.Fprintf(&sb, "  %-22s %6s %10s %10s %12s %12s %8s\n",
		"window", "sel", "ns/op", "off ns/op", "bytes", "off bytes", "pruned")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %-22s %5.1f%% %10d %10d %12d %12d %8d\n",
			p.Label, p.Selectivity*100, p.NsPerOp, p.OffNsPerOp, p.BytesDecoded, p.OffBytesDecoded, p.SpansPruned)
	}
	return sb.String()
}

// selectivityWindows are the swept l_shipdate windows, widest to empty.
var selectivityWindows = []struct{ label, lo, hi string }{
	{"all (7 years)", "1992-01-01", "1999-01-01"},
	{"3 years", "1993-01-01", "1996-01-01"},
	{"1 year", "1994-01-01", "1995-01-01"},
	{"1 month", "1994-03-01", "1994-04-01"},
	{"1 week", "1994-03-01", "1994-03-08"},
	{"empty (future)", "2020-01-01", "2021-01-01"},
}

// Selectivity sweeps a Q6-shaped scan-dominated aggregation over lineitem
// across predicate selectivities, recording for each window the physical
// scan work and per-op cost of the late-materialized pushdown pipeline and
// of the pre-pushdown Select-above-scan pipeline, and validating that both
// return the same aggregate.
func Selectivity(sf float64, nodes int) (*SelectivityResult, error) {
	// No block cache: this experiment meters decode work per iteration.
	eng, err := NewEngineNoCache(nodes, 2, 2*nodes)
	if err != nil {
		return nil, err
	}
	d := tpch.Generate(sf, 9)
	if err := tpch.LoadIntoEngine(eng, d, 2*nodes); err != nil {
		return nil, err
	}
	total, err := eng.TableRows("lineitem")
	if err != nil {
		return nil, err
	}
	res := &SelectivityResult{SF: sf, Rows: total}

	for _, w := range selectivityWindows {
		q := fmt.Sprintf(`select sum(l_extendedprice * l_discount) as revenue, count(*) as n
			from lineitem
			where l_shipdate >= date '%s' and l_shipdate < date '%s'
			  and l_discount between 0.02 and 0.09 and l_quantity < 45`, w.lo, w.hi)
		p, err := sql.Compile(q, eng)
		if err != nil {
			return nil, fmt.Errorf("selectivity %q: %w", w.label, err)
		}
		pt := SelectivityPoint{Label: w.label}

		on, off := true, false
		run := func(pushdown *bool) ([][]any, error) {
			r, err := eng.QueryOpts(p, core.QueryOptions{ScanPushdown: pushdown})
			if err != nil {
				return nil, err
			}
			return r.Rows, nil
		}
		// Warm both paths once (and validate the aggregates against each
		// other: same engine, same rows, only the scan pipeline differs).
		rowsOn, err := run(&on)
		if err != nil {
			return nil, err
		}
		rowsOff, err := run(&off)
		if err != nil {
			return nil, err
		}
		pt.Match = rowsEqual(rowsOn, rowsOff)
		if len(rowsOn) == 1 && len(rowsOn[0]) == 2 {
			if n, ok := rowsOn[0][1].(int64); ok {
				pt.Rows = n
				if total > 0 {
					pt.Selectivity = float64(n) / float64(total)
				}
			}
		}

		reps := 5
		measure := func(pushdown *bool) (nsPerOp, allocsPerOp, blocks, bytes, pruned int64, err error) {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			s0 := eng.ScanStats()
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if _, err = run(pushdown); err != nil {
					return
				}
			}
			elapsed := time.Since(t0)
			s1 := eng.ScanStats()
			runtime.ReadMemStats(&m1)
			n := int64(reps)
			return elapsed.Nanoseconds() / n, int64(m1.Mallocs-m0.Mallocs) / n,
				(s1.BlocksRead - s0.BlocksRead) / n, (s1.BytesDecoded - s0.BytesDecoded) / n,
				(s1.SpansPruned - s0.SpansPruned) / n, nil
		}
		if pt.NsPerOp, pt.AllocsPerOp, pt.BlocksRead, pt.BytesDecoded, pt.SpansPruned, err = measure(&on); err != nil {
			return nil, err
		}
		if pt.OffNsPerOp, _, pt.OffBlocksRead, pt.OffBytesDecoded, _, err = measure(&off); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
