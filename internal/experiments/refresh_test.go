package experiments

import "testing"

// TestRefreshSQLValidates is the acceptance gate for SQL DML: after
// executing the TPC-H refresh streams RF1 and RF2 as SQL text against SF
// 0.01, every query with SQL text must return row-identical results to
// expected values recomputed over the post-refresh data — and the refresh
// volume must have pushed at least one partition through update
// propagation, so the tail-insert and rewrite paths are exercised too.
func TestRefreshSQLValidates(t *testing.T) {
	res, err := Refresh(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.RF1Orders == 0 || res.RF1Items == 0 {
		t.Fatalf("RF1 inserted nothing: %+v", res)
	}
	if res.RF2Orders == 0 || res.RF2Items == 0 {
		t.Fatalf("RF2 deleted nothing: %+v", res)
	}
	if res.PropagatedPartitions == 0 {
		t.Fatalf("no partition went through update propagation; flush threshold too high for the refresh volume")
	}
	for _, q := range res.Queries {
		if !q.Match {
			t.Errorf("Q%02d diverged from the recomputed expected result (%d rows)", q.Q, q.Rows)
		}
	}
	if len(res.Queries) < 8 {
		t.Fatalf("validated only %d queries", len(res.Queries))
	}
	t.Log("\n" + res.Report())
}
