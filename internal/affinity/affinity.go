// Package affinity computes VectorH's partition placement decisions (§3, §4,
// Figures 2 and 3 of the paper): the initial round-robin affinity mapping at
// table creation, the min-cost-flow re-mapping after worker-set changes, and
// the responsibility assignment that designates exactly one worker per
// partition. The flow formulations follow Figure 3: source → partition edges
// carry the replication degree (or 1 for responsibilities), partition →
// worker edges cost 0 when the partition is already local and 1 otherwise,
// and worker → sink edges cap each worker's fair share.
package affinity

import (
	"fmt"
	"sort"

	"vectorh/internal/flownet"
)

// Locality reports whether a partition's data currently resides on a node
// (derived from HDFS block locations by the caller).
type Locality func(part, node string) bool

// InitialMapping assigns partitions to workers in the round-robin pattern of
// Figure 2: consecutive groups of #parts/#workers partitions go to one
// worker, and replica r of group g lands on worker (g+r) mod N. The first
// entry of each partition's node list is its primary (and initially
// responsible) node.
func InitialMapping(parts, workers []string, r int) map[string][]string {
	n := len(workers)
	if n == 0 {
		return nil
	}
	if r > n {
		r = n
	}
	perNode := (len(parts) + n - 1) / n
	if perNode == 0 {
		perNode = 1
	}
	out := make(map[string][]string, len(parts))
	for i, p := range parts {
		g := i / perNode
		locs := make([]string, 0, r)
		for c := 0; c < r; c++ {
			locs = append(locs, workers[(g+c)%n])
		}
		out[p] = locs
	}
	return out
}

// ComputeAffinity solves the Figure 3 min-cost flow with source→partition
// capacity equal to the replication degree: it decides on which r workers
// each partition should be stored, preferring nodes where the partition is
// already local and balancing each worker to at most ⌈P·r/N⌉ partitions.
func ComputeAffinity(parts, workers []string, r int, isLocal Locality) (map[string][]string, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("affinity: no workers")
	}
	if r > len(workers) {
		r = len(workers)
	}
	flows, err := solve(parts, workers, r, isLocal)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(parts))
	for pi, p := range parts {
		var locs []string
		// Local nodes first so the primary stays put when possible.
		for wi, w := range workers {
			if flows[pi][wi] > 0 && isLocal != nil && isLocal(p, w) {
				locs = append(locs, w)
			}
		}
		for wi, w := range workers {
			if flows[pi][wi] > 0 && (isLocal == nil || !isLocal(p, w)) {
				locs = append(locs, w)
			}
		}
		out[p] = locs
	}
	return out, nil
}

// ComputeResponsibility solves the same flow with source→partition capacity
// 1, designating the single responsible worker per partition. Each worker
// becomes responsible for at most ⌈P/N⌉ partitions.
func ComputeResponsibility(parts, workers []string, isLocal Locality) (map[string]string, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("affinity: no workers")
	}
	flows, err := solve(parts, workers, 1, isLocal)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(parts))
	for pi, p := range parts {
		for wi, w := range workers {
			if flows[pi][wi] > 0 {
				out[p] = w
				break
			}
		}
		if _, ok := out[p]; !ok {
			return nil, fmt.Errorf("affinity: partition %s unassigned", p)
		}
	}
	return out, nil
}

// solve builds and solves the bipartite flow of Figure 3, returning per
// (partition, worker) flows.
func solve(parts, workers []string, perPart int, isLocal Locality) ([][]int, error) {
	p, n := len(parts), len(workers)
	// Node ids: 0 = source, 1..p partitions, p+1..p+n workers, p+n+1 sink.
	s, t := 0, p+n+1
	g := flownet.New(p + n + 2)
	cap := (p*perPart + n - 1) / n
	if cap == 0 {
		cap = 1
	}
	edgeIDs := make([][]int, p)
	for pi := range parts {
		g.AddEdge(s, 1+pi, perPart, 0)
		edgeIDs[pi] = make([]int, n)
	}
	for pi, part := range parts {
		for wi, w := range workers {
			cost := 1
			if isLocal != nil && isLocal(part, w) {
				cost = 0
			}
			edgeIDs[pi][wi] = g.AddEdge(1+pi, 1+p+wi, 1, cost)
		}
	}
	for wi := range workers {
		g.AddEdge(1+p+wi, t, cap, 0)
	}
	flow, _ := g.MinCostMaxFlow(s, t)
	if flow < p*perPart && perPart <= n {
		return nil, fmt.Errorf("affinity: could only place %d of %d partition copies", flow, p*perPart)
	}
	out := make([][]int, p)
	for pi := range parts {
		out[pi] = make([]int, n)
		for wi := range workers {
			out[pi][wi] = g.Flow(edgeIDs[pi][wi])
		}
	}
	return out, nil
}

// LocalityScore counts the partitions local to a node; dbAgent ranks
// candidate workers by it during worker-set selection.
func LocalityScore(parts []string, node string, isLocal Locality) int {
	score := 0
	for _, p := range parts {
		if isLocal(p, node) {
			score++
		}
	}
	return score
}

// Moves diffs two affinity mappings and returns the partition copies that
// must be re-replicated (partition → nodes that newly store it), sorted for
// stable reporting.
func Moves(old, new map[string][]string) []string {
	var moves []string
	for p, locs := range new {
		prev := map[string]bool{}
		for _, n := range old[p] {
			prev[n] = true
		}
		for _, n := range locs {
			if !prev[n] {
				moves = append(moves, p+"->"+n)
			}
		}
	}
	sort.Strings(moves)
	return moves
}
