package affinity

import (
	"fmt"
	"testing"
)

func parts(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i+1)
	}
	return out
}

func TestInitialMappingFigure2(t *testing.T) {
	// Figure 2 top: 12 partitions, 4 nodes, R=3. Primary of group g on
	// node g+1; copy a on node g+2; copy b on node g+3 (mod 4).
	workers := []string{"node1", "node2", "node3", "node4"}
	m := InitialMapping(parts("R", 12), workers, 3)
	if got := m["R01"]; got[0] != "node1" || got[1] != "node2" || got[2] != "node3" {
		t.Fatalf("R01 = %v", got)
	}
	if got := m["R04"]; got[0] != "node2" || got[1] != "node3" || got[2] != "node4" {
		t.Fatalf("R04 = %v", got)
	}
	if got := m["R10"]; got[0] != "node4" || got[1] != "node1" || got[2] != "node2" {
		t.Fatalf("R10 = %v", got)
	}
	// Every node stores exactly 9 partition copies.
	count := map[string]int{}
	for _, locs := range m {
		for _, n := range locs {
			count[n]++
		}
	}
	for _, w := range workers {
		if count[w] != 9 {
			t.Fatalf("%s stores %d copies, want 9", w, count[w])
		}
	}
}

func TestInitialMappingClampsReplication(t *testing.T) {
	m := InitialMapping(parts("P", 4), []string{"a", "b"}, 3)
	for p, locs := range m {
		if len(locs) != 2 {
			t.Fatalf("%s has %d replicas on a 2-node cluster", p, len(locs))
		}
	}
}

func locFromMap(m map[string][]string) Locality {
	return func(part, node string) bool {
		for _, n := range m[part] {
			if n == node {
				return true
			}
		}
		return false
	}
}

func TestComputeAffinityAfterNodeFailureFigure2(t *testing.T) {
	// Figure 2 bottom: node4 fails. Each surviving node must pick up
	// exactly 3 extra partition copies, and all previously-local copies
	// must stay where they are (cost-0 edges).
	all := []string{"node1", "node2", "node3", "node4"}
	survivors := all[:3]
	ps := parts("R", 12)
	old := InitialMapping(ps, all, 3)
	isLocal := func(part, node string) bool {
		if node == "node4" {
			return false
		}
		return locFromMap(old)(part, node)
	}
	next, err := ComputeAffinity(ps, survivors, 3, isLocal)
	if err != nil {
		t.Fatal(err)
	}
	// Every partition now has 3 replicas across the 3 survivors.
	for p, locs := range next {
		if len(locs) != 3 {
			t.Fatalf("%s has %d replicas: %v", p, len(locs), locs)
		}
		seen := map[string]bool{}
		for _, n := range locs {
			if n == "node4" || seen[n] {
				t.Fatalf("%s placed badly: %v", p, locs)
			}
			seen[n] = true
		}
	}
	// Exactly the 9 copies lost with node4 are re-replicated (3 per node).
	moves := Moves(old, next)
	if len(moves) != 9 {
		t.Fatalf("moved %d copies, want 9: %v", len(moves), moves)
	}
	gained := map[string]int{}
	for p, locs := range next {
		for _, n := range locs {
			if !isLocal(p, n) {
				gained[n]++
			}
		}
	}
	for _, w := range survivors {
		if gained[w] != 3 {
			t.Fatalf("%s gained %d copies, want 3 (balanced)", w, gained[w])
		}
	}
}

func TestComputeResponsibilityBalancedAndLocal(t *testing.T) {
	workers := []string{"node1", "node2", "node3"}
	ps := parts("R", 12)
	aff := InitialMapping(ps, workers, 3)
	resp, err := ComputeResponsibility(ps, workers, locFromMap(aff))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for p, w := range resp {
		count[w]++
		if !locFromMap(aff)(p, w) {
			t.Fatalf("responsible node %s for %s is not local", w, p)
		}
	}
	for _, w := range workers {
		if count[w] != 4 {
			t.Fatalf("%s responsible for %d partitions, want 4", w, count[w])
		}
	}
}

func TestComputeResponsibilityWithNoLocalityStillBalances(t *testing.T) {
	workers := []string{"a", "b"}
	ps := parts("P", 6)
	resp, err := ComputeResponsibility(ps, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, w := range resp {
		count[w]++
	}
	if count["a"] != 3 || count["b"] != 3 {
		t.Fatalf("unbalanced: %v", count)
	}
}

func TestComputeAffinityNoWorkers(t *testing.T) {
	if _, err := ComputeAffinity(parts("P", 2), nil, 3, nil); err == nil {
		t.Fatal("no workers should fail")
	}
	if _, err := ComputeResponsibility(parts("P", 2), nil, nil); err == nil {
		t.Fatal("no workers should fail")
	}
}

func TestComputeAffinitySingleWorker(t *testing.T) {
	// Shrunk-to-minimum scenario from §4: everything lands on one node.
	m, err := ComputeAffinity(parts("P", 5), []string{"solo"}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p, locs := range m {
		if len(locs) != 1 || locs[0] != "solo" {
			t.Fatalf("%s = %v", p, locs)
		}
	}
}

func TestLocalityScore(t *testing.T) {
	aff := map[string][]string{"P1": {"a"}, "P2": {"a", "b"}, "P3": {"b"}}
	ps := []string{"P1", "P2", "P3"}
	if got := LocalityScore(ps, "a", locFromMap(aff)); got != 2 {
		t.Fatalf("score(a) = %d", got)
	}
	if got := LocalityScore(ps, "b", locFromMap(aff)); got != 2 {
		t.Fatalf("score(b) = %d", got)
	}
	if got := LocalityScore(ps, "c", locFromMap(aff)); got != 0 {
		t.Fatalf("score(c) = %d", got)
	}
}

func TestMovesDiff(t *testing.T) {
	old := map[string][]string{"P1": {"a", "b"}}
	next := map[string][]string{"P1": {"b", "c"}}
	moves := Moves(old, next)
	if len(moves) != 1 || moves[0] != "P1->c" {
		t.Fatalf("moves = %v", moves)
	}
}
