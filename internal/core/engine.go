// Package core assembles the VectorH engine: a simulated Hadoop cluster
// (HDFS + YARN) hosting N worker processes, a session master coordinating
// transactions and parallel query optimization, column-store partitions with
// instrumented block placement, PDT-based trickle updates, and the
// distributed execution runtime. It is the integration point of every
// substrate package and the implementation behind the public vectorh API.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vectorh/internal/affinity"
	"vectorh/internal/colstore"
	"vectorh/internal/hdfs"
	"vectorh/internal/mpi"
	"vectorh/internal/mpp"
	"vectorh/internal/obs"
	"vectorh/internal/pdt"
	"vectorh/internal/rewriter"
	"vectorh/internal/txn"
	"vectorh/internal/vector"
	"vectorh/internal/wal"
	"vectorh/internal/yarn"
)

// Config parameterizes an engine.
type Config struct {
	Nodes          []string        // datanode/worker names; default 3 nodes
	ThreadsPerNode int             // exchange consumer threads; default 2
	Replication    int             // HDFS replication degree; default 3
	BlockSize      int             // HDFS block size; default 1 MiB
	Format         colstore.Format // column store format
	Mode           mpp.Mode        // DXchg fan-out strategy
	MsgBytes       int             // exchange message size
	PDTFlushBytes  int             // update-propagation trigger; default 8 MiB
	NodeResources  yarn.Resource   // per-node capacity; default 16GB/16c

	// BlockCacheBytes bounds the engine-shared decoded-block cache
	// (0 = default 64 MiB, negative = disabled). Experiments that measure
	// raw decode work per query disable it.
	BlockCacheBytes int64
}

func (c *Config) fill() {
	if len(c.Nodes) == 0 {
		c.Nodes = []string{"node1", "node2", "node3"}
	}
	if c.ThreadsPerNode <= 0 {
		c.ThreadsPerNode = 2
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 1 << 20
	}
	if c.PDTFlushBytes <= 0 {
		c.PDTFlushBytes = 8 << 20
	}
	if c.NodeResources == (yarn.Resource{}) {
		c.NodeResources = yarn.Resource{MemoryMB: 16 << 10, VCores: 16}
	}
}

// Table is one catalog entry.
type Table struct {
	Info  rewriter.TableInfo
	Parts []*Partition
}

// Replicated reports whether the table is stored replicated on every node.
func (t *Table) Replicated() bool { return t.Info.PartitionKey == "" }

// Partition is one table partition's storage and delta state. Its metadata
// is copy-on-write: writers (bulk load, update propagation, MinMax widening)
// build a clone and publish it with a pointer swap, while every open scan
// holds a refcounted reference to the generation it started on. Files that a
// new generation superseded are deleted only when the last scan of the old
// generation finishes, so concurrent readers never observe a half-mutated
// block directory or a vanished chunk file.
type Partition struct {
	Key         txn.PartKey
	Responsible string // node owning the partition's WAL and PDTs

	// mu is read-mostly: scans pin the current generation and snapshot the
	// PDT masters under RLock (so concurrent scan opens never serialize on
	// each other), while writers publish a new generation and reset PDTs
	// under the exclusive lock.
	mu  sync.RWMutex
	cur *metaGen
}

// metaGen is one refcounted metadata generation. The refcount is atomic so
// pinning under the partition's shared read lock never mutates map state;
// retirement bookkeeping (dead files) is written by the publisher under the
// exclusive lock and claimed exactly once via claimed.
type metaGen struct {
	meta    *colstore.PartitionMeta
	refs    atomic.Int64
	retired atomic.Bool
	claimed atomic.Bool
	dead    []string // superseded files; set before retired is published
}

// takeDead claims the generation's dead files for deletion, exactly once,
// and only when the generation is retired with no scans pinning it.
func (g *metaGen) takeDead() []string {
	if g.retired.Load() && g.refs.Load() == 0 && g.claimed.CompareAndSwap(false, true) {
		return g.dead
	}
	return nil
}

// CurrentMeta returns the partition's current storage metadata generation.
// The returned value is immutable; writers publish successors via clone +
// pointer swap.
func (p *Partition) CurrentMeta() *colstore.PartitionMeta {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cur.meta
}

// pinLocked pins the current metadata generation for an open scan. Caller
// holds p.mu (shared or exclusive).
func (p *Partition) pinLocked() *metaGen {
	g := p.cur
	g.refs.Add(1)
	return g
}

// release unpins a metadata generation; when the last scan of a retired
// generation finishes, its superseded files are deleted. Lock-free: the
// publisher and the last releaser race for the claim, and exactly one wins.
func (p *Partition) release(g *metaGen, fs *hdfs.Cluster) {
	debugCheckRefs(g.refs.Add(-1))
	deleteAll(fs, g.takeDead())
}

// publishLocked swaps in a new metadata generation, retiring the old one.
// deadFiles lists files the new generation no longer references; they are
// returned for immediate deletion when no scan pins the old generation, or
// claimed by the old generation's last release. Caller holds p.mu
// exclusively.
func (p *Partition) publishLocked(newMeta *colstore.PartitionMeta, deadFiles []string) (deletable []string) {
	old := p.cur
	p.cur = &metaGen{meta: newMeta}
	if len(deadFiles) == 0 {
		return nil
	}
	old.dead = deadFiles
	old.retired.Store(true)
	return old.takeDead()
}

func deleteAll(fs *hdfs.Cluster, files []string) {
	for _, f := range files {
		if fs.Exists(f) {
			fs.Delete(f)
		}
	}
}

// Engine is the running system: cluster substrate plus catalog and
// transaction state. One Engine simulates the whole VectorH deployment; the
// session master is Nodes()[0] unless failures move it.
type Engine struct {
	// mu guards the catalog and worker-set views. It is read-mostly: query
	// compilation, scan setup and stats reads take the shared lock, while
	// DDL, node failure and row-count refreshes take it exclusively.
	mu  sync.RWMutex
	cfg Config

	// writeMu serializes mutators of table storage — bulk load, trickle DML,
	// update propagation, node failure handling — against each other. Reads
	// (scans) never take it: they run against refcounted copy-on-write
	// snapshots of partition metadata and PDT masters, so the engine
	// supports N concurrent readers plus one writer at a time.
	writeMu sync.Mutex

	fs     *hdfs.Cluster
	rm     *yarn.ResourceManager
	agent  *yarn.DBAgent
	net    *mpi.Network
	policy *placementPolicy
	mgr    *txn.Manager

	active []string // current worker set, in node-index order
	tables map[string]*Table

	// ShippedEntries counts log-shipping deliveries for replicated tables
	// (§6 "Log Shipping").
	ShippedEntries int64

	// Engine-wide scan IO counters, folded in when each MScan closes.
	scanBlocksRead        atomic.Int64
	scanBytesDecoded      atomic.Int64
	scanSpansPruned       atomic.Int64
	scanCacheHits         atomic.Int64
	scanBytesSkipped      atomic.Int64
	scanBytesMaterialized atomic.Int64

	// catalogEpoch counts catalog- and data-changing events (DDL, DML
	// commits, bulk loads, propagation, node failure). Plan caches key on it:
	// a cached plan compiled at an older epoch is discarded, so stale plans
	// are never served.
	catalogEpoch atomic.Int64

	// PDT flush propagation counters (§5 "Update Propagation").
	pdtFlushes      atomic.Int64
	pdtFlushEntries atomic.Int64

	// blockCache is the engine-shared decoded-block cache (nil = disabled).
	blockCache *colstore.BlockCache

	// reg is the engine's metrics registry: every subsystem (scans, block
	// cache, PDT flushes, and — via Obs() — the plan cache and serving
	// layer) registers here, so one Prometheus scrape covers the system.
	reg *obs.Registry
}

// ScanStats is the engine-wide physical scan work since startup. Experiments
// diff two snapshots around a query to attribute blocks read, compressed
// bytes decoded, and spans dropped by scan-side predicates.
type ScanStats struct {
	BlocksRead        int64 // column blocks fetched and decompressed
	BytesDecoded      int64 // compressed payload bytes decoded
	SpansPruned       int64 // row spans rejected before any payload column decode
	BytesSkipped      int64 // compressed bytes of projected blocks never decoded
	BytesMaterialized int64 // value bytes produced into execution memory
}

// ScanStats returns a snapshot of the cumulative scan counters.
func (e *Engine) ScanStats() ScanStats {
	return ScanStats{
		BlocksRead:        e.scanBlocksRead.Load(),
		BytesDecoded:      e.scanBytesDecoded.Load(),
		SpansPruned:       e.scanSpansPruned.Load(),
		BytesSkipped:      e.scanBytesSkipped.Load(),
		BytesMaterialized: e.scanBytesMaterialized.Load(),
	}
}

// CatalogEpoch returns the current catalog epoch. Every DDL statement, DML
// commit, bulk load, PDT propagation and topology change bumps it; compiled
// plans are valid only for the epoch they were built at.
func (e *Engine) CatalogEpoch() int64 { return e.catalogEpoch.Load() }

// bumpEpoch advances the catalog epoch after a catalog- or data-changing
// event.
func (e *Engine) bumpEpoch() { e.catalogEpoch.Add(1) }

// BlockCacheStats reports the shared decoded-block cache's effectiveness
// (zero value when the cache is disabled).
func (e *Engine) BlockCacheStats() colstore.BlockCacheStats {
	if e.blockCache == nil {
		return colstore.BlockCacheStats{}
	}
	return e.blockCache.Stats()
}

// EngineStats is a batched snapshot of the engine's observability counters:
// one call reads everything the serving layer reports, instead of each
// stats request taking Engine.mu once per counter.
type EngineStats struct {
	Scan         ScanStats
	ScanCacheHit int64
	CatalogEpoch int64
	BlockCache   colstore.BlockCacheStats
	Tables       int
	Workers      int
}

// Stats returns a batched engine stats snapshot. The counters are atomics;
// only the catalog sizes take the (shared) engine lock, once.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	tables, workers := len(e.tables), len(e.active)
	e.mu.RUnlock()
	return EngineStats{
		Scan:         e.ScanStats(),
		ScanCacheHit: e.scanCacheHits.Load(),
		CatalogEpoch: e.CatalogEpoch(),
		BlockCache:   e.BlockCacheStats(),
		Tables:       tables,
		Workers:      workers,
	}
}

// TableStorage is one table's storage footprint: raw value bytes versus
// encoded bytes on disk, summed over all partitions' current metadata
// generations.
type TableStorage struct {
	Table        string `json:"table"`
	RawBytes     int64  `json:"raw_bytes"`
	EncodedBytes int64  `json:"encoded_bytes"`
}

// TableStorage reports the per-table compression footprint, sorted by table
// name. Tables with no flushed blocks report zero bytes.
func (e *Engine) TableStorage() []TableStorage {
	e.mu.RLock()
	tabs := make(map[string]*Table, len(e.tables))
	for n, t := range e.tables {
		tabs[n] = t
	}
	e.mu.RUnlock()
	names := make([]string, 0, len(tabs))
	for n := range tabs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TableStorage, 0, len(names))
	for _, n := range names {
		var raw, enc int64
		for _, p := range tabs[n].Parts {
			r, c := p.CurrentMeta().StorageBytes()
			raw += r
			enc += c
		}
		out = append(out, TableStorage{Table: n, RawBytes: raw, EncodedBytes: enc})
	}
	return out
}

// Obs returns the engine's metrics registry. Never nil: higher layers (plan
// cache, server admission) register their metrics into it so the whole
// system shares one exposition endpoint.
func (e *Engine) Obs() *obs.Registry { return e.reg }

// registerMetrics binds the engine's pre-existing atomics into the registry
// as scrape-time callbacks; nothing is double-counted and the hot paths keep
// writing the same atomics they always did.
func (e *Engine) registerMetrics() {
	r := e.reg
	r.CounterFunc("vectorh_scan_blocks_read_total", "Column blocks fetched and decompressed.",
		func() float64 { return float64(e.scanBlocksRead.Load()) })
	r.CounterFunc("vectorh_scan_bytes_decoded_total", "Compressed payload bytes decoded by scans.",
		func() float64 { return float64(e.scanBytesDecoded.Load()) })
	r.CounterFunc("vectorh_scan_spans_pruned_total", "Row spans rejected before any payload column decode.",
		func() float64 { return float64(e.scanSpansPruned.Load()) })
	r.CounterFunc("vectorh_scan_cache_hits_total", "Scan block reads served by the decoded-block cache.",
		func() float64 { return float64(e.scanCacheHits.Load()) })
	r.CounterFunc("vectorh_scan_bytes_skipped_total", "Compressed bytes of projected blocks scans never decoded.",
		func() float64 { return float64(e.scanBytesSkipped.Load()) })
	r.CounterFunc("vectorh_scan_bytes_materialized_total", "Value bytes scans produced into execution memory.",
		func() float64 { return float64(e.scanBytesMaterialized.Load()) })
	r.CounterFunc("vectorh_block_cache_hits_total", "Decoded-block cache hits.",
		func() float64 { return float64(e.BlockCacheStats().Hits) })
	r.CounterFunc("vectorh_block_cache_misses_total", "Decoded-block cache misses.",
		func() float64 { return float64(e.BlockCacheStats().Misses) })
	r.CounterFunc("vectorh_block_cache_evictions_total", "Decoded-block cache evictions.",
		func() float64 { return float64(e.BlockCacheStats().Evictions) })
	r.GaugeFunc("vectorh_block_cache_bytes", "Decoded bytes resident in the block cache.",
		func() float64 { return float64(e.BlockCacheStats().Bytes) })
	r.CounterFunc("vectorh_pdt_flushes_total", "PDT flush propagations to stable storage.",
		func() float64 { return float64(e.pdtFlushes.Load()) })
	r.CounterFunc("vectorh_pdt_flush_entries_total", "PDT entries merged into blocks by flush propagation.",
		func() float64 { return float64(e.pdtFlushEntries.Load()) })
	r.CounterFunc("vectorh_log_shipped_entries_total", "Log-shipping deliveries for replicated tables.",
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(e.ShippedEntries)
		})
	r.GaugeFunc("vectorh_catalog_epoch", "Catalog epoch (bumped by DDL, DML commits, loads, topology changes).",
		func() float64 { return float64(e.CatalogEpoch()) })
	r.GaugeFunc("vectorh_tables", "Tables in the catalog.",
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(len(e.tables))
		})
	r.GaugeFunc("vectorh_workers", "Active worker nodes.",
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(len(e.active))
		})
}

// New creates and starts an engine: it brings up the simulated HDFS and
// YARN, negotiates the worker set through the dbAgent, and initializes the
// transaction manager with a global WAL.
func New(cfg Config) (*Engine, error) {
	cfg.fill()
	e := &Engine{cfg: cfg, tables: make(map[string]*Table), reg: obs.NewRegistry()}
	e.registerMetrics()
	e.policy = &placementPolicy{targets: make(map[string][]string), fallback: hdfs.NewDefaultPolicy(7)}
	e.fs = hdfs.NewCluster(cfg.Nodes, hdfs.Config{
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Policy:      e.policy,
	})
	e.rm = yarn.NewResourceManager()
	for _, n := range cfg.Nodes {
		e.rm.AddNode(n, cfg.NodeResources)
	}
	slice := yarn.Resource{MemoryMB: cfg.NodeResources.MemoryMB / 4, VCores: cfg.NodeResources.VCores / 4}
	if slice.VCores == 0 {
		slice = cfg.NodeResources
	}
	e.agent = yarn.NewDBAgent(e.rm, 5, slice, cfg.NodeResources, slice)
	workers, err := e.agent.SelectWorkers(cfg.Nodes, len(cfg.Nodes), nil)
	if err != nil {
		return nil, err
	}
	if err := e.agent.Start(workers); err != nil {
		return nil, err
	}
	e.active = workers
	e.net = mpi.NewNetwork(len(workers))
	e.mgr = txn.NewManager(wal.Open(e.fs, "/wal/global", e.master()))
	switch {
	case cfg.BlockCacheBytes == 0:
		e.blockCache = colstore.NewBlockCache(64 << 20)
	case cfg.BlockCacheBytes > 0:
		e.blockCache = colstore.NewBlockCache(cfg.BlockCacheBytes)
	}
	e.mgr.OnCommit = func(part txn.PartKey, entries []pdt.Entry, epoch int64) {
		// Every DML commit invalidates cached plans: statistics a compiled
		// plan baked in (row counts, column ranges) may have shifted.
		e.bumpEpoch()
		// Log shipping: replicated-table commits are broadcast to every
		// worker so their cached PDT images stay current. In this
		// single-process simulation all workers share the master PDT
		// state, so shipping reduces to accounting.
		table := strings.SplitN(string(part), "/", 2)[0]
		e.mu.Lock()
		if t, ok := e.tables[table]; ok && t.Replicated() {
			e.ShippedEntries += int64(len(entries)) * int64(len(e.active)-1)
		}
		e.mu.Unlock()
	}
	return e, nil
}

// master returns the session-master node name.
func (e *Engine) master() string { return e.active[0] }

// Nodes returns the current worker set.
func (e *Engine) Nodes() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.active...)
}

// FS exposes the simulated HDFS (benchmarks read its IO counters).
func (e *Engine) FS() *hdfs.Cluster { return e.fs }

// Net exposes the simulated network fabric.
func (e *Engine) Net() *mpi.Network { return e.net }

// Agent exposes the YARN dbAgent.
func (e *Engine) Agent() *yarn.DBAgent { return e.agent }

// RM exposes the YARN resource manager (for tenant simulation in tests).
func (e *Engine) RM() *yarn.ResourceManager { return e.rm }

// Manager exposes the transaction manager.
func (e *Engine) Manager() *txn.Manager { return e.mgr }

// Table returns catalog metadata, satisfying rewriter.Catalog.
func (e *Engine) Table(name string) (rewriter.TableInfo, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return rewriter.TableInfo{}, fmt.Errorf("core: unknown table %q", name)
	}
	return t.Info, nil
}

// TableSchema satisfies plan.Catalog.
func (e *Engine) TableSchema(name string) (vector.Schema, error) {
	info, err := e.Table(name)
	if err != nil {
		return nil, err
	}
	return info.Schema, nil
}

// partKey names the txn partition of a table partition.
func partKey(table string, part int) txn.PartKey {
	return txn.PartKey(fmt.Sprintf("%s/%d", table, part))
}

// CreateTable registers a table: partition metadata, affinity-steered HDFS
// placement, per-partition WALs at the responsible nodes, and empty PDTs.
// A PartitionKey of "" creates a replicated table (stored once, replicated
// to every node).
func (e *Engine) CreateTable(info rewriter.TableInfo) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[info.Name]; dup {
		return fmt.Errorf("core: table %q exists", info.Name)
	}
	if info.PartitionKey == "" {
		info.Partitions = 1
	} else if info.Partitions <= 0 {
		info.Partitions = len(e.active)
	}
	if info.PartitionKey != "" {
		f, err := info.Schema.Field(info.PartitionKey)
		if err != nil {
			return err
		}
		if f.Type.Kind != vector.Int32 && f.Type.Kind != vector.Int64 {
			return fmt.Errorf("core: partition key %q must be an integer column", info.PartitionKey)
		}
	}
	t := &Table{Info: info}

	// Affinity mapping: identical for every table of the same partition
	// count, which co-locates matching partitions (Figure 2's R/S pairs).
	var partNames []string
	for p := 0; p < info.Partitions; p++ {
		partNames = append(partNames, fmt.Sprintf("p%04d", p))
	}
	var aff map[string][]string
	if info.PartitionKey == "" {
		// Replicated: one partition stored at every node.
		aff = map[string][]string{"p0000": append([]string(nil), e.active...)}
	} else {
		aff = affinity.InitialMapping(partNames, e.active, e.cfg.Replication)
	}
	for p := 0; p < info.Partitions; p++ {
		meta := colstore.NewPartitionMeta(info.Name, p, info.Schema, e.cfg.Format)
		locs := aff[partNames[p]]
		resp := locs[0]
		e.policy.set(meta.Dir(), locs)
		part := &Partition{cur: &metaGen{meta: meta}, Key: partKey(info.Name, p), Responsible: resp}
		walPath := fmt.Sprintf("/wal/%s/p%04d", info.Name, p)
		e.mgr.AddPartition(part.Key, 0, wal.Open(e.fs, walPath, resp))
		t.Parts = append(t.Parts, part)
	}
	e.tables[info.Name] = t
	e.registerTableMetrics(info.Name)
	e.bumpEpoch()
	return nil
}

// metricName sanitizes a table name into a Prometheus metric-name suffix
// (the registry has no label support, so per-table metrics fold the table
// name into the metric name).
func metricName(s string) string {
	out := []byte(s)
	for i, c := range out {
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '_') {
			out[i] = '_'
		}
	}
	return string(out)
}

// registerTableMetrics binds a per-table compression-ratio gauge: raw value
// bytes over encoded bytes on disk, across all partitions of the current
// metadata generations. A ratio of 1 means incompressible; 0 means the
// table holds no flushed blocks yet (or was dropped).
func (e *Engine) registerTableMetrics(name string) {
	e.reg.GaugeFunc("vectorh_table_compression_ratio_"+metricName(name),
		"Raw-to-encoded storage ratio of table "+name+".",
		func() float64 {
			e.mu.RLock()
			t, ok := e.tables[name]
			e.mu.RUnlock()
			if !ok {
				return 0
			}
			var raw, enc int64
			for _, p := range t.Parts {
				r, c := p.CurrentMeta().StorageBytes()
				raw += r
				enc += c
			}
			if enc == 0 {
				return 0
			}
			return float64(raw) / float64(enc)
		})
}

// TableRows returns the visible row count of a table.
func (e *Engine) TableRows(name string) (int64, error) {
	e.mu.RLock()
	t, ok := e.tables[name]
	e.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", name)
	}
	var total int64
	for _, p := range t.Parts {
		n, err := e.mgr.SizeOf(p.Key)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ColumnRange folds the MinMax block summaries of an integer-kinded column
// (ints and dates) into a single [lo, hi] value range across all
// partitions. ok is false when the table or column is unknown or no block
// carries a summary — the SQL planner's selectivity model then falls back
// to its default guess instead of trusting a zero range.
func (e *Engine) ColumnRange(table, col string) (lo, hi int64, ok bool) {
	e.mu.RLock()
	t, found := e.tables[table]
	e.mu.RUnlock()
	if !found {
		return 0, 0, false
	}
	for _, p := range t.Parts {
		cm, err := p.CurrentMeta().Col(col)
		if err != nil {
			return 0, 0, false
		}
		if cm.Type.Kind != vector.Int32 && cm.Type.Kind != vector.Int64 {
			return 0, 0, false // NumMin/NumMax only summarize integer kinds
		}
		for _, b := range cm.Blocks {
			if !b.HasMinMax {
				continue
			}
			if !ok || b.NumMin < lo {
				lo = b.NumMin
			}
			if !ok || b.NumMax > hi {
				hi = b.NumMax
			}
			ok = true
		}
	}
	return lo, hi, ok
}

// nodeIndex maps a node name to its index in the active worker set.
func (e *Engine) nodeIndex(name string) int {
	for i, n := range e.active {
		if n == name {
			return i
		}
	}
	return -1
}

// KillNode simulates a worker/datanode failure: the dead node leaves the
// worker set, the affinity mapping is recomputed with the min-cost flow of
// Figure 3, HDFS re-replicates lost blocks under the updated placement
// policy, and partition responsibilities move to surviving local nodes.
func (e *Engine) KillNode(name string) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	idx := e.nodeIndex(name)
	if idx < 0 {
		return fmt.Errorf("core: %s not in worker set", name)
	}
	e.fs.KillNode(name)
	e.rm.RemoveNode(name)
	e.active = append(e.active[:idx], e.active[idx+1:]...)
	if len(e.active) == 0 {
		return fmt.Errorf("core: no workers left")
	}
	e.net = mpi.NewNetwork(len(e.active))

	for _, t := range e.tables {
		var partNames []string
		isLocal := func(part, node string) bool {
			p := t.Parts[partIndex(part)]
			pm := p.CurrentMeta()
			for _, f := range pm.Files() {
				r, err := e.fs.Open(f, node)
				if err != nil {
					continue
				}
				sz, _ := e.fs.Size(f)
				if sz > 0 && !r.IsLocal(node, 0, sz) {
					return false
				}
			}
			// A partition with no files yet counts as local to its
			// assigned targets.
			locs := e.policy.get(pm.Dir())
			for _, l := range locs {
				if l == node {
					return true
				}
			}
			return len(pm.Files()) > 0
		}
		for p := range t.Parts {
			partNames = append(partNames, fmt.Sprintf("p%04d", p))
		}
		r := e.cfg.Replication
		if t.Replicated() {
			r = len(e.active)
		}
		aff, err := affinity.ComputeAffinity(partNames, e.active, r, func(part, node string) bool {
			return isLocal(part, node)
		})
		if err != nil {
			return err
		}
		resp, err := affinity.ComputeResponsibility(partNames, e.active, func(part, node string) bool {
			return isLocal(part, node)
		})
		if err != nil {
			return err
		}
		for p, part := range t.Parts {
			pn := partNames[p]
			e.policy.set(part.CurrentMeta().Dir(), aff[pn])
			part.Responsible = resp[pn]
		}
	}
	e.fs.ReReplicate()
	e.bumpEpoch()
	return nil
}

func partIndex(partName string) int {
	var p int
	fmt.Sscanf(partName, "p%04d", &p)
	return p
}

// placementPolicy is the instrumented HDFS BlockPlacementPolicy of §3: it
// pins every file under a partition directory to the partition's affinity
// nodes, so locality survives re-replication and rebalancing.
type placementPolicy struct {
	mu       sync.Mutex
	targets  map[string][]string // partition dir -> replica nodes
	fallback hdfs.BlockPlacementPolicy
}

func (p *placementPolicy) set(dir string, nodes []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets[dir] = append([]string(nil), nodes...)
}

func (p *placementPolicy) get(dir string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.targets[dir]
}

// match returns the pinned node list for the directory owning path, or nil.
func (p *placementPolicy) match(path string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	for dir, nodes := range p.targets {
		if strings.HasPrefix(path, dir+"/") {
			return nodes
		}
	}
	return nil
}

// ChooseTarget implements hdfs.BlockPlacementPolicy.
func (p *placementPolicy) ChooseTarget(path, writer string, replicas int, exclude, alive []string) []string {
	want := p.match(path)
	if want == nil {
		return p.fallback.ChooseTarget(path, writer, replicas, exclude, alive)
	}
	aliveSet := make(map[string]bool, len(alive))
	for _, a := range alive {
		aliveSet[a] = true
	}
	excluded := make(map[string]bool, len(exclude))
	for _, x := range exclude {
		excluded[x] = true
	}
	var out []string
	for _, n := range want {
		if len(out) < replicas && aliveSet[n] && !excluded[n] {
			out = append(out, n)
		}
	}
	return out
}

// PartitionMetaForTest exposes a partition's storage metadata for benchmarks
// and reports (e.g. the Figure-1 compressed-size chart).
func (e *Engine) PartitionMetaForTest(table string, part int) *colstore.PartitionMeta {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[table]
	if !ok || part >= len(t.Parts) {
		return nil
	}
	return t.Parts[part].CurrentMeta()
}

// SortedTables lists catalog tables (stable order, for reports).
func (e *Engine) SortedTables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var names []string
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
