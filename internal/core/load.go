package core

import (
	"context"
	"fmt"
	"sort"

	"vectorh/internal/colstore"
	"vectorh/internal/exec"
	"vectorh/internal/expr"
	"vectorh/internal/pdt"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// partitionOf returns the hash partition a key belongs to (all tables use
// the same function, so equal partition counts mean co-located joins). It
// uses the high bits of the key hash while exchanges route on the low bits,
// so a repartitioning exchange never degenerates into a no-op whose routing
// accidentally matches the table partitioning.
func partitionOf(key int64, parts int) int {
	return int((exec.HashInt64(key) >> 32) % uint64(parts))
}

// Load bulk-appends batches into a table's stable storage, bypassing PDTs
// (the vwload path). Partitioned tables are hash-partitioned on the
// partition key; clustered tables are sorted on the clustered column per
// partition. Appends are issued from each partition's responsible node, so
// the first HDFS replica lands locally.
func (e *Engine) Load(table string, batches []*vector.Batch) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.RLock()
	t, ok := e.tables[table]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown table %q", table)
	}
	schema := t.Info.Schema
	nparts := len(t.Parts)

	// Split rows per partition (replicated tables have one partition).
	perPart := make([]*vector.Batch, nparts)
	for i := range perPart {
		perPart[i] = vector.NewBatchForSchema(schema, 0)
	}
	keyIdx := -1
	if t.Info.PartitionKey != "" {
		keyIdx = schema.Index(t.Info.PartitionKey)
	}
	for _, b := range batches {
		c := b.Compact()
		for r := 0; r < c.Len(); r++ {
			p := 0
			if keyIdx >= 0 {
				p = partitionOf(int64At(c.Col(keyIdx), r), nparts)
			}
			for ci := range schema {
				perPart[p].Vecs[ci].AppendFrom(c.Col(ci), r)
			}
		}
	}
	for pi, part := range t.Parts {
		pb := perPart[pi]
		if pb.Len() == 0 {
			continue
		}
		if t.Info.ClusteredOn != "" {
			ci := schema.Index(t.Info.ClusteredOn)
			perm := sortPermBy(pb, ci)
			pb = &vector.Batch{Vecs: pb.Vecs, Sel: perm}
		}
		if err := e.appendStable(t, part, pb); err != nil {
			return err
		}
	}
	return nil
}

func int64At(v *vector.Vec, r int) int64 {
	if v.Kind() == vector.Int32 {
		return int64(v.Int32s()[r])
	}
	return v.Int64s()[r]
}

func sortPermBy(b *vector.Batch, col int) []int32 {
	perm := make([]int32, b.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	v := b.Col(col)
	sort.SliceStable(perm, func(x, y int) bool {
		return int64At(v, int(perm[x])) < int64At(v, int(perm[y]))
	})
	return perm
}

// appendStable writes rows to a partition's column store and refreshes its
// transaction state to the new stable row count (bulk load happens outside
// transactions, as in vwload). The caller holds e.writeMu.
//
// Copy-on-write: the appender works on a clone of the partition metadata;
// concurrent scans keep reading the published generation (appends to chunk
// files only add bytes past the offsets old block directories reference).
// The clone is published — and the PDTs reset — in one critical section, so
// a scan opening mid-append sees either the old blocks+PDT tail or the new
// blocks+empty PDTs, never a mix.
func (e *Engine) appendStable(t *Table, part *Partition, b *vector.Batch) error {
	newMeta := part.CurrentMeta().Clone()
	a, err := colstore.NewAppender(e.fs, newMeta, part.Responsible)
	if err != nil {
		return err
	}
	// Feed in vector-sized batches to bound appender encode granularity.
	c := b.Compact()
	for off := 0; off < c.Len(); off += vector.MaxSize {
		hi := off + vector.MaxSize
		if hi > c.Len() {
			hi = c.Len()
		}
		sub := &vector.Batch{Vecs: make([]*vector.Vec, len(c.Vecs))}
		for i, v := range c.Vecs {
			sub.Vecs[i] = v.Slice(off, hi)
		}
		if err := a.Append(sub); err != nil {
			return err
		}
	}
	if err := a.Close(); err != nil {
		return err
	}
	if t.Replicated() {
		// Replicated tables carry one replica per worker.
		for _, f := range newMeta.Files() {
			if err := e.fs.SetReplication(f, len(e.active)); err != nil {
				return err
			}
		}
		e.fs.ReReplicate()
	}
	part.mu.Lock()
	deletable := part.publishLocked(newMeta, a.Superseded())
	err = e.mgr.ResetAfterFlush(part.Key, newMeta.Rows)
	part.mu.Unlock()
	deleteAll(e.fs, deletable)
	e.bumpEpoch()
	if err != nil {
		return err
	}
	e.bumpRows(t)
	return nil
}

// nodeSlots snapshots the active-node ordering (name → slot) under e.mu.
func (e *Engine) nodeSlots() map[string]int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	nodeOf := make(map[string]int, len(e.active))
	for i, n := range e.active {
		nodeOf[n] = i
	}
	return nodeOf
}

func (e *Engine) bumpRows(t *Table) {
	var total int64
	for _, p := range t.Parts {
		if n, err := e.mgr.SizeOf(p.Key); err == nil {
			total += n
		} else {
			total += p.CurrentMeta().Rows
		}
	}
	// Info.Rows lives on the shared *Table; mutate it only under the engine
	// lock so concurrent readers (Engine.Table, the rewriter's catalog
	// lookups) never observe a torn write.
	e.mu.Lock()
	t.Info.Rows = total
	e.tables[t.Info.Name] = t
	e.mu.Unlock()
}

// InsertRows trickle-inserts rows through PDTs in one transaction (the RF1
// path). Rows land in the Write-PDT as tail inserts; queries see them
// immediately after commit, and query performance stays unaffected (§8
// "Impact of Updates").
func (e *Engine) InsertRows(table string, b *vector.Batch) error {
	//lint:ctx compatibility shim for context-free callers; cancellable path is InsertRowsContext
	return e.InsertRowsContext(context.Background(), table, b)
}

// InsertRowsContext is InsertRows honoring a context: a cancelled context
// aborts the transaction before commit (committed work is never undone).
func (e *Engine) InsertRowsContext(ctx context.Context, table string, b *vector.Batch) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.RLock()
	t, ok := e.tables[table]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown table %q", table)
	}
	schema := t.Info.Schema
	keyIdx := -1
	if t.Info.PartitionKey != "" {
		keyIdx = schema.Index(t.Info.PartitionKey)
	}
	tx := e.mgr.Begin()
	c := b.Compact()
	for r := 0; r < c.Len(); r++ {
		if r%1024 == 0 && ctx.Err() != nil {
			tx.Abort()
			return fmt.Errorf("core: insert into %s canceled: %w", table, context.Cause(ctx))
		}
		p := 0
		if keyIdx >= 0 {
			p = partitionOf(int64At(c.Col(keyIdx), r), len(t.Parts))
		}
		if err := tx.Append(t.Parts[p].Key, c.Row(r)); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		tx.Abort()
		return fmt.Errorf("core: insert into %s canceled: %w", table, context.Cause(ctx))
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	e.bumpRows(t)
	if err := e.maybePropagate(t); err != nil {
		// The insert is durably committed; only the post-commit flush
		// failed. Say so, or a caller would retry and duplicate the rows.
		return fmt.Errorf("core: rows committed, but post-commit flush failed: %w", err)
	}
	return nil
}

// DeleteWhere trickle-deletes all rows matching pred, returning the count.
// Deletes are recorded positionally in the PDTs (compact for contiguous
// ranges) at each partition's responsible node.
func (e *Engine) DeleteWhere(table string, pred plan.Expr) (int64, error) {
	//lint:ctx compatibility shim for context-free callers; cancellable path is DeleteWhereContext
	return e.DeleteWhereContext(context.Background(), table, pred)
}

// DeleteWhereContext is DeleteWhere honoring a context.
func (e *Engine) DeleteWhereContext(ctx context.Context, table string, pred plan.Expr) (int64, error) {
	return e.updateWhere(ctx, table, pred, nil, nil)
}

// UpdateWhere trickle-modifies the named columns of matching rows with
// values computed by the given expressions (over the full table schema).
func (e *Engine) UpdateWhere(table string, pred plan.Expr, setCols []string, setExprs []plan.Expr) (int64, error) {
	//lint:ctx compatibility shim for context-free callers; cancellable path is UpdateWhereContext
	return e.UpdateWhereContext(context.Background(), table, pred, setCols, setExprs)
}

// UpdateWhereContext is UpdateWhere honoring a context.
func (e *Engine) UpdateWhereContext(ctx context.Context, table string, pred plan.Expr, setCols []string, setExprs []plan.Expr) (int64, error) {
	if len(setCols) == 0 {
		return 0, fmt.Errorf("core: UpdateWhere without SET columns")
	}
	return e.updateWhere(ctx, table, pred, setCols, setExprs)
}

// widenOp is one deferred MinMax widening (see updateWhere).
type widenOp struct {
	cols []int
	vals []any
}

func (e *Engine) updateWhere(ctx context.Context, table string, pred plan.Expr, setCols []string, setExprs []plan.Expr) (int64, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.RLock()
	t, ok := e.tables[table]
	e.mu.RUnlock()
	nodeOf := e.nodeSlots()
	if !ok {
		return 0, fmt.Errorf("core: unknown table %q", table)
	}
	schema := t.Info.Schema
	bound, err := pred.Bind(schema)
	if err != nil {
		return 0, err
	}
	if pt, err := pred.Type(schema); err != nil || pt.Kind != vector.Bool {
		return 0, fmt.Errorf("core: predicate on %q is not boolean", table)
	}
	var setIdx []int
	var setBound []expr.Expr
	for i, cname := range setCols {
		ci := schema.Index(cname)
		if ci < 0 {
			return 0, fmt.Errorf("core: no column %q", cname)
		}
		setIdx = append(setIdx, ci)
		be, err := setExprs[i].Bind(schema)
		if err != nil {
			return 0, err
		}
		// Reject SET expressions whose physical kind does not match the
		// column: the value would land in the PDT as-is and only blow up
		// later, deep inside a merging scan.
		if be.Kind() != schema[ci].Type.Kind {
			return 0, fmt.Errorf("core: SET %s: expression kind %s does not match column kind %s",
				cname, be.Kind(), schema[ci].Type.Kind)
		}
		setBound = append(setBound, be)
	}

	tx := e.mgr.Begin()
	var total int64
	for _, part := range t.Parts {
		// Scan the partition at its responsible node, tracking RIDs. Hits
		// are applied batch by batch — bounded chunks of at most
		// vector.MaxSize rows — rather than buffered per partition; the
		// scan works on snapshotted PDTs, so the transaction's own
		// uncommitted writes never disturb it.
		node := nodeOf[part.Responsible]
		// Value-space scan: the batches feed SET-expression evaluation and
		// PDT writes, which want materialized strings anyway.
		scan, err := e.partitionScanCtx(ctx, table, part.CurrentMeta().Partition, schema.Names(), nil, node, false)
		if err != nil {
			tx.Abort()
			return 0, err
		}
		if err := scan.Open(); err != nil {
			tx.Abort()
			return 0, err
		}
		rid := int64(0)
		deleted := int64(0) // rows already deleted below the cursor
		// MinMax widenings are collected during the scan and applied as one
		// copy-on-write metadata publish afterwards: the scan itself pins
		// the current metadata generation, so widening in place would race
		// with it (and every other concurrent reader).
		var widens []widenOp
		for {
			b, err := scan.Next()
			if err != nil {
				scan.Close()
				tx.Abort()
				return 0, err
			}
			if b == nil {
				break
			}
			pv, err := bound.Eval(b)
			if err != nil {
				scan.Close()
				tx.Abort()
				return 0, err
			}
			matches := pv.Bools()
			nmatch := 0
			for _, m := range matches {
				if m {
					nmatch++
				}
			}
			if nmatch == 0 {
				// No hit in this batch: skip SET evaluation entirely.
				rid += int64(b.Len())
				continue
			}
			if setCols == nil {
				// Ascending deletes: each prior delete shifts the visible
				// positions above it down by one.
				for r, match := range matches {
					if !match {
						continue
					}
					if err := tx.Delete(part.Key, rid+int64(r)-deleted); err != nil {
						scan.Close()
						tx.Abort()
						return 0, err
					}
					deleted++
				}
			} else {
				var setVals []*vector.Vec
				for _, se := range setBound {
					v, err := se.Eval(b)
					if err != nil {
						scan.Close()
						tx.Abort()
						return 0, err
					}
					setVals = append(setVals, v)
				}
				for r, match := range matches {
					if !match {
						continue
					}
					vals := make([]any, len(setVals))
					for i, v := range setVals {
						vals[i] = v.Get(r)
					}
					if err := tx.Modify(part.Key, rid+int64(r), setIdx, vals); err != nil {
						scan.Close()
						tx.Abort()
						return 0, err
					}
					widens = append(widens, widenOp{cols: setIdx, vals: vals})
				}
			}
			total += int64(nmatch)
			rid += int64(b.Len())
		}
		scan.Close()
		// Widen MinMax so block skipping stays correct (§6), published
		// before commit: once the modify is visible, no scan may skip a
		// block whose new value lies outside the old summary.
		if len(widens) > 0 {
			e.applyWidens(part, widens)
		}
	}
	if err := ctx.Err(); err != nil {
		tx.Abort()
		return 0, fmt.Errorf("core: %s canceled: %w", table, context.Cause(ctx))
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	e.bumpRows(t)
	if err := e.maybePropagate(t); err != nil {
		// The changes are durably committed; report the affected count
		// alongside the post-commit flush failure.
		return total, fmt.Errorf("core: %d rows committed, but post-commit flush failed: %w", total, err)
	}
	return total, nil
}

// applyWidens publishes a metadata generation whose MinMax summaries cover
// the given modified values (conservatively: every block of the column,
// because a modify addresses rows by RID whose SID is unknown here).
func (e *Engine) applyWidens(part *Partition, widens []widenOp) {
	newMeta := part.CurrentMeta().Clone()
	schema := newMeta.Schema()
	for _, w := range widens {
		for i, ci := range w.cols {
			f := schema[ci]
			switch f.Type.Kind {
			case vector.Int32:
				if x, ok := w.vals[i].(int32); ok {
					widenAll(newMeta, f.Name, int64(x), 0, "")
				}
			case vector.Int64:
				if x, ok := w.vals[i].(int64); ok {
					widenAll(newMeta, f.Name, x, 0, "")
				}
			case vector.Float64:
				if x, ok := w.vals[i].(float64); ok {
					widenAll(newMeta, f.Name, 0, x, "")
				}
			case vector.String:
				if x, ok := w.vals[i].(string); ok {
					widenAll(newMeta, f.Name, 0, 0, x)
				}
			}
		}
	}
	part.mu.Lock()
	part.publishLocked(newMeta, nil)
	part.mu.Unlock()
	e.bumpEpoch()
}

func widenAll(m *colstore.PartitionMeta, col string, n int64, f float64, s string) {
	c, err := m.Col(col)
	if err != nil {
		return
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		m.Widen(col, b.RowStart, n, f, s)
	}
}

// maybePropagate runs update propagation for partitions whose PDT layers
// exceed the flush threshold. Propagation failures are surfaced, not
// swallowed: a partition whose flush failed half-way must not pretend the
// write path is healthy. The caller holds e.writeMu.
func (e *Engine) maybePropagate(t *Table) error {
	for _, part := range t.Parts {
		mem, err := e.mgr.MemBytesOf(part.Key)
		if err != nil {
			continue
		}
		if mem >= e.cfg.PDTFlushBytes {
			if err := e.propagatePartition(t, part); err != nil {
				return fmt.Errorf("core: propagating %s.p%d: %w", t.Info.Name, part.CurrentMeta().Partition, err)
			}
		}
	}
	return nil
}

// PropagatePartition flushes a partition's PDTs into the column store: tail
// inserts append new blocks (the cheap path of §6), anything else rewrites
// the partition into a new generation of chunk files.
func (e *Engine) PropagatePartition(table string, partIdx int) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.RLock()
	t, ok := e.tables[table]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown table %q", table)
	}
	if partIdx < 0 || partIdx >= len(t.Parts) {
		return fmt.Errorf("core: %s has no partition %d", table, partIdx)
	}
	return e.propagatePartition(t, t.Parts[partIdx])
}

// propagatePartition is PropagatePartition with e.writeMu held.
func (e *Engine) propagatePartition(t *Table, part *Partition) error {
	nodeOf := e.nodeSlots()
	if err := e.mgr.PropagateWriteToRead(part.Key); err != nil {
		return err
	}
	stRead, _, err := e.mgr.Snapshot(part.Key)
	if err != nil {
		return err
	}
	ins, del, mod := stRead.Counts()
	if ins+del+mod == 0 {
		return nil
	}
	e.pdtFlushes.Add(1)
	e.pdtFlushEntries.Add(int64(ins + del + mod))
	schema := t.Info.Schema
	partIdx := part.CurrentMeta().Partition

	if stRead.IsTailInsertOnly() {
		// Tail-insert separation: append new blocks only.
		merger := pdt.NewMerger(stRead, schema, identityCols(len(schema)))
		tail, _ := merger.Tail()
		if tail != nil {
			if err := e.appendStable(t, part, tail); err != nil {
				return err
			}
		}
		return nil
	}

	// Full rewrite into a new partition generation. The rewriting scan pins
	// the current generation; the appender fills a fresh one (new directory,
	// Gen+1), which is published — with the PDTs reset — in one critical
	// section once the rewrite completes. Scans that started on the old
	// generation finish undisturbed; its files are deleted when the last of
	// them closes.
	node := nodeOf[part.Responsible]
	scan, err := e.PartitionScan(t.Info.Name, partIdx, schema.Names(), nil, node)
	if err != nil {
		return err
	}
	oldMeta := part.CurrentMeta()
	newMeta := colstore.NewPartitionMeta(t.Info.Name, partIdx, schema, e.cfg.Format)
	newMeta.Gen = oldMeta.Gen + 1
	e.policy.set(newMeta.Dir(), e.policy.get(oldMeta.Dir()))
	a, err := colstore.NewAppender(e.fs, newMeta, part.Responsible)
	if err != nil {
		return err
	}
	if err := scan.Open(); err != nil {
		return err
	}
	for {
		b, err := scan.Next()
		if err != nil {
			scan.Close()
			return err
		}
		if b == nil {
			break
		}
		if err := a.Append(b.Compact()); err != nil {
			scan.Close()
			return err
		}
	}
	scan.Close()
	if err := a.Close(); err != nil {
		return err
	}
	if t.Replicated() {
		for _, f := range newMeta.Files() {
			if err := e.fs.SetReplication(f, len(e.active)); err != nil {
				return err
			}
		}
		e.fs.ReReplicate()
	}
	part.mu.Lock()
	deletable := part.publishLocked(newMeta, oldMeta.Files())
	err = e.mgr.ResetAfterFlush(part.Key, newMeta.Rows)
	part.mu.Unlock()
	deleteAll(e.fs, deletable)
	e.bumpEpoch()
	return err
}

func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
