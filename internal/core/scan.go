package core

import (
	"context"
	"fmt"

	"vectorh/internal/colstore"
	"vectorh/internal/exec"
	"vectorh/internal/pdt"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// The engine implements rewriter.ScanProvider: MScan operators read
// compressed column blocks (with MinMax skipping) and merge the partition's
// PDT layers positionally — every query sees the latest committed state
// without the scan touching keys (§6).
//
// Concurrency: a scan pins one refcounted metadata generation plus the PDT
// masters in a single critical section at Open (the same lock writers hold
// while publishing a new generation and resetting PDTs), so the block image
// and the delta image always describe the same moment. Scans therefore run
// freely alongside a concurrent DML writer.

// ResponsibleParts implements rewriter.ScanProvider.
func (e *Engine) ResponsibleParts(table string, node int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok || node >= len(e.active) {
		return nil
	}
	name := e.active[node]
	var out []int
	for p, part := range t.Parts {
		if part.Responsible == name {
			out = append(out, p)
		}
	}
	return out
}

// PartitionScan implements rewriter.ScanProvider.
func (e *Engine) PartitionScan(table string, partIdx int, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	return e.partitionScanCtx(context.Background(), table, partIdx, cols, pred, node)
}

func (e *Engine) partitionScanCtx(ctx context.Context, table string, partIdx int, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	e.mu.Lock()
	t, ok := e.tables[table]
	var nodeName string
	if node < len(e.active) {
		nodeName = e.active[node]
	}
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if partIdx < 0 || partIdx >= len(t.Parts) {
		return nil, fmt.Errorf("core: %s has no partition %d", table, partIdx)
	}
	return e.newMScan(ctx, t, t.Parts[partIdx], cols, pred, nodeName)
}

// ReplicatedScan implements rewriter.ScanProvider.
func (e *Engine) ReplicatedScan(table string, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	return e.replicatedScanCtx(context.Background(), table, cols, pred, node)
}

func (e *Engine) replicatedScanCtx(ctx context.Context, table string, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	e.mu.Lock()
	t, ok := e.tables[table]
	var nodeName string
	if node < len(e.active) {
		nodeName = e.active[node]
	}
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if len(t.Parts) == 0 {
		return nil, fmt.Errorf("core: table %q has no partitions", table)
	}
	return e.newMScan(ctx, t, t.Parts[0], cols, pred, nodeName)
}

// ctxScans adapts the engine to rewriter.ScanProvider for one query
// execution, threading the query's context into every storage scan so a
// deadline or client cancel stops block reads at batch granularity.
type ctxScans struct {
	e   *Engine
	ctx context.Context
}

// PartitionScan implements rewriter.ScanProvider.
func (c ctxScans) PartitionScan(table string, part int, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	return c.e.partitionScanCtx(c.ctx, table, part, cols, pred, node)
}

// ReplicatedScan implements rewriter.ScanProvider.
func (c ctxScans) ReplicatedScan(table string, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	return c.e.replicatedScanCtx(c.ctx, table, cols, pred, node)
}

// ResponsibleParts implements rewriter.ScanProvider.
func (c ctxScans) ResponsibleParts(table string, node int) []int {
	return c.e.ResponsibleParts(table, node)
}

// mscan streams one partition: column blocks merged through the Read- and
// Write-PDT layers, with MinMax-skipped ranges and the PDT tail inserts.
type mscan struct {
	eng    *Engine
	part   *Partition
	node   string
	cols   []string
	colIdx []int
	pred   *rewriter.ScanPred
	ctx    context.Context

	// Acquired at Open in one critical section, released at Close.
	meta     *colstore.PartitionMeta
	readPDT  *pdt.PDT
	writePDT *pdt.PDT

	sc     *colstore.Scanner
	readM  *pdt.Merger
	writeM *pdt.Merger
	stage  int // 0=blocks, 1=read tail, 2=write tail, 3=done
}

func (e *Engine) newMScan(ctx context.Context, t *Table, part *Partition, cols []string, pred *rewriter.ScanPred, node string) (exec.Operator, error) {
	schema := t.Info.Schema
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = schema.Index(c)
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("core: no column %q in %s", c, t.Info.Name)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &mscan{eng: e, part: part, node: node, cols: cols, colIdx: colIdx, pred: pred, ctx: ctx}, nil
}

// Open implements exec.Operator. It pins the partition's storage metadata
// generation and snapshots the PDT masters atomically: writers publish new
// block directories and reset PDTs under the same partition lock, so the
// two images always agree on which rows live where.
func (m *mscan) Open() error {
	m.part.mu.Lock()
	read, write, err := m.eng.mgr.Snapshot(m.part.Key)
	if err != nil {
		m.part.mu.Unlock()
		return err
	}
	m.meta = m.part.acquireLocked()
	m.part.mu.Unlock()
	m.readPDT, m.writePDT = read, write

	ranges := m.meta.FullRange()
	if m.pred != nil {
		// A skip hint naming a column the partition does not store is a
		// malformed plan — surface it instead of silently scanning
		// everything. A column of a kind without an int64 MinMax index
		// (string, float) merely has no skip opportunity.
		c, err := m.meta.Col(m.pred.Col)
		if err != nil {
			m.releaseMeta()
			return fmt.Errorf("core: MinMax skip hint: %w", err)
		}
		if c.Type.Kind == vector.Int32 || c.Type.Kind == vector.Int64 {
			qr, err := m.meta.QualifyingRanges(m.pred.Col, colstore.Int64RangePred(m.pred.Lo, m.pred.Hi))
			if err != nil {
				m.releaseMeta()
				return err
			}
			ranges = colstore.IntersectRanges(ranges, qr)
		}
	}
	sc, err := colstore.NewScanner(m.eng.fs, m.meta, m.node, m.cols, ranges)
	if err != nil {
		m.releaseMeta()
		return err
	}
	m.sc = sc
	schema := m.meta.Schema()
	m.readM = pdt.NewMerger(m.readPDT, schema, m.colIdx)
	m.writeM = pdt.NewMerger(m.writePDT, schema, m.colIdx)
	m.stage = 0
	return nil
}

// Next implements exec.Operator. The query context is checked once per
// batch: a cancelled or timed-out query stops issuing block reads
// immediately instead of draining the partition.
func (m *mscan) Next() (*vector.Batch, error) {
	for {
		if err := m.ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: scan of %s.p%d canceled: %w", m.meta.Table, m.meta.Partition, context.Cause(m.ctx))
		}
		switch m.stage {
		case 0:
			b, sid, err := m.sc.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				m.stage = 1
				continue
			}
			if !m.readM.HasDeltas() && !m.writeM.HasDeltas() {
				return b, nil // fast path: never-updated partition
			}
			b1, rid1, err := m.readM.MergeRange(b, sid)
			if err != nil {
				return nil, err
			}
			if b1.Len() == 0 {
				continue
			}
			b2, _, err := m.writeM.MergeRange(b1, rid1)
			if err != nil {
				return nil, err
			}
			if b2.Len() == 0 {
				continue
			}
			return b2, nil
		case 1:
			m.stage = 2
			if tail, rid := m.readM.Tail(); tail != nil {
				b2, _, err := m.writeM.MergeRange(tail, rid)
				if err != nil {
					return nil, err
				}
				if b2.Len() > 0 {
					return b2, nil
				}
			}
		case 2:
			m.stage = 3
			if tail, _ := m.writeM.Tail(); tail != nil && tail.Len() > 0 {
				return tail, nil
			}
		default:
			return nil, nil
		}
	}
}

func (m *mscan) releaseMeta() {
	if m.meta != nil {
		m.part.release(m.meta, m.eng.fs)
		m.meta = nil
	}
}

// Close implements exec.Operator: it releases the scanner's decoded block
// cache and the merger snapshots so a finished (or abandoned) scan does not
// pin column blocks and PDT entry lists in memory, and unpins the metadata
// generation (triggering deferred deletion of superseded files once the
// last reader of a retired generation is gone).
func (m *mscan) Close() error {
	if m.sc != nil {
		m.sc.Close()
		m.sc = nil
	}
	m.readM, m.writeM = nil, nil
	m.readPDT, m.writePDT = nil, nil
	m.releaseMeta()
	m.stage = 3
	return nil
}
