package core

import (
	"context"
	"fmt"

	"vectorh/internal/colstore"
	"vectorh/internal/exec"
	"vectorh/internal/pdt"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// The engine implements rewriter.ScanProvider: MScan operators read
// compressed column blocks (with per-kind MinMax skipping) and merge the
// partition's PDT layers positionally — every query sees the latest
// committed state without the scan touching keys (§6).
//
// Late materialization: when the rewriter pushes a filtering predicate set
// into the scan, each span decodes only the predicate columns first,
// evaluates the conjuncts vectorized into a selection vector, and drops
// dead spans without ever touching the payload columns; surviving rows
// gather the payload columns through the scanner's column-subset API. Spans
// touched by PDT deltas fall back to decode-all + merge, with the predicate
// re-evaluated on the merged rows (and on PDT tail inserts), since deltas
// can flip a row's qualification either way.
//
// Concurrency: a scan pins one refcounted metadata generation plus the PDT
// masters in a single critical section at Open (the same lock writers hold
// while publishing a new generation and resetting PDTs), so the block image
// and the delta image always describe the same moment. Scans therefore run
// freely alongside a concurrent DML writer.

// ResponsibleParts implements rewriter.ScanProvider.
func (e *Engine) ResponsibleParts(table string, node int) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[table]
	if !ok || node >= len(e.active) {
		return nil
	}
	name := e.active[node]
	var out []int
	for p, part := range t.Parts {
		if part.Responsible == name {
			out = append(out, p)
		}
	}
	return out
}

// tableAndNode resolves a table and the name of the executing node slot
// under one catalog read lock.
func (e *Engine) tableAndNode(table string, node int) (*Table, string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[table]
	var nodeName string
	if node >= 0 && node < len(e.active) {
		nodeName = e.active[node]
	}
	return t, nodeName, ok
}

// PartitionScan implements rewriter.ScanProvider.
func (e *Engine) PartitionScan(table string, partIdx int, cols []string, pred *rewriter.ScanPredSet, node int) (exec.Operator, error) {
	//lint:ctx ScanProvider interface method without a context; query paths use ctxScans
	return e.partitionScanCtx(context.Background(), table, partIdx, cols, pred, node, true)
}

func (e *Engine) partitionScanCtx(ctx context.Context, table string, partIdx int, cols []string, pred *rewriter.ScanPredSet, node int, codeExec bool) (exec.Operator, error) {
	t, nodeName, ok := e.tableAndNode(table, node)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if partIdx < 0 || partIdx >= len(t.Parts) {
		return nil, fmt.Errorf("core: %s has no partition %d", table, partIdx)
	}
	return e.newMScan(ctx, t, t.Parts[partIdx], cols, pred, nodeName, codeExec)
}

// ReplicatedScan implements rewriter.ScanProvider.
func (e *Engine) ReplicatedScan(table string, cols []string, pred *rewriter.ScanPredSet, node int) (exec.Operator, error) {
	//lint:ctx ScanProvider interface method without a context; query paths use ctxScans
	return e.replicatedScanCtx(context.Background(), table, cols, pred, node, true)
}

func (e *Engine) replicatedScanCtx(ctx context.Context, table string, cols []string, pred *rewriter.ScanPredSet, node int, codeExec bool) (exec.Operator, error) {
	t, nodeName, ok := e.tableAndNode(table, node)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if len(t.Parts) == 0 {
		return nil, fmt.Errorf("core: table %q has no partitions", table)
	}
	return e.newMScan(ctx, t, t.Parts[0], cols, pred, nodeName, codeExec)
}

// ctxScans adapts the engine to rewriter.ScanProvider for one query
// execution, threading the query's context into every storage scan so a
// deadline or client cancel stops block reads at batch granularity, plus
// the query's compressed-execution toggle.
type ctxScans struct {
	e        *Engine
	ctx      context.Context
	codeExec bool
}

// PartitionScan implements rewriter.ScanProvider.
func (c ctxScans) PartitionScan(table string, part int, cols []string, pred *rewriter.ScanPredSet, node int) (exec.Operator, error) {
	return c.e.partitionScanCtx(c.ctx, table, part, cols, pred, node, c.codeExec)
}

// ReplicatedScan implements rewriter.ScanProvider.
func (c ctxScans) ReplicatedScan(table string, cols []string, pred *rewriter.ScanPredSet, node int) (exec.Operator, error) {
	return c.e.replicatedScanCtx(c.ctx, table, cols, pred, node, c.codeExec)
}

// ResponsibleParts implements rewriter.ScanProvider.
func (c ctxScans) ResponsibleParts(table string, node int) []int {
	return c.e.ResponsibleParts(table, node)
}

// mscan streams one partition: column blocks merged through the Read- and
// Write-PDT layers, with MinMax-skipped ranges, scan-side predicate
// filtering, and the PDT tail inserts.
type mscan struct {
	eng    *Engine
	part   *Partition
	node   string
	cols   []string
	colIdx []int
	pred   *rewriter.ScanPredSet
	ctx    context.Context

	// codeExec enables compressed-domain execution for this scan (scanner
	// serves dictionary-code vectors, predicates verdict against per-block
	// dictionaries and PFOR frame bounds); codeSpace additionally requires
	// the pushed predicate set to be marked legal for it.
	codeExec  bool
	codeSpace bool

	// Acquired at Open in one critical section, released at Close.
	gen      *metaGen
	meta     *colstore.PartitionMeta
	readPDT  *pdt.PDT
	writePDT *pdt.PDT

	sc     *colstore.Scanner
	readM  *pdt.Merger
	writeM *pdt.Merger
	stage  int // 0=blocks, 1=read tail, 2=write tail, 3=done

	// Compiled filtering state (nil/empty for skip-only or no predicate).
	filters   []rowFilter
	leadSlots []int  // predicate column slots: the only columns stage 0 decodes eagerly
	skip      []bool // per-span verdict scratch: filters proven all-pass, kernels elided

	spansPruned int64 // spans dropped before any payload column was decoded

	// IO totals retained at Close (after folding into the engine-wide
	// counters) so EXPLAIN ANALYZE can attribute blocks and bytes to this
	// scan operator after the query has finished.
	io ScanIO
}

// ScanIO is the per-scan-operator IO attribution reported by EXPLAIN
// ANALYZE: what this one scan read, decoded, skipped and hit in cache.
type ScanIO struct {
	BlocksRead        int64
	BytesDecoded      int64
	CacheHits         int64
	SpansPruned       int64
	BytesSkipped      int64 // compressed bytes never decoded (pruned blocks)
	BytesMaterialized int64 // value bytes produced into execution memory
}

// ScanIOStats returns the scan's retained IO totals; valid once the scan is
// closed (the engine closes every operator before reading profiles).
func (m *mscan) ScanIOStats() ScanIO { return m.io }

func (e *Engine) newMScan(ctx context.Context, t *Table, part *Partition, cols []string, pred *rewriter.ScanPredSet, node string, codeExec bool) (exec.Operator, error) {
	schema := t.Info.Schema
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = schema.Index(c)
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("core: no column %q in %s", c, t.Info.Name)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &mscan{eng: e, part: part, node: node, cols: cols, colIdx: colIdx, pred: pred, ctx: ctx, codeExec: codeExec}, nil
}

// Open implements exec.Operator. It pins the partition's storage metadata
// generation and snapshots the PDT masters atomically: writers publish new
// block directories and reset PDTs under the same partition lock, so the
// two images always agree on which rows live where. Predicate compilation
// happens here too: each conjunct contributes a MinMax block predicate
// (intersected into the qualifying ranges) and — unless the set is
// skip-only — a vectorized row kernel.
// snapshotAndPin pins the partition's metadata generation and snapshots
// the PDT masters under one shared read lock: any number of scans open
// concurrently; only a writer publishing a new generation (and resetting
// PDTs) excludes them, which keeps the block image and delta image of one
// scan consistent.
func (m *mscan) snapshotAndPin() (read, write *pdt.PDT, err error) {
	m.part.mu.RLock()
	defer m.part.mu.RUnlock()
	read, write, err = m.eng.mgr.Snapshot(m.part.Key)
	if err != nil {
		return nil, nil, err
	}
	m.gen = m.part.pinLocked()
	return read, write, nil
}

func (m *mscan) Open() error {
	read, write, err := m.snapshotAndPin()
	if err != nil {
		return err
	}
	m.meta = m.gen.meta
	m.readPDT, m.writePDT = read, write

	ranges := m.meta.FullRange()
	if m.pred != nil {
		for _, p := range m.pred.Preds {
			// A predicate naming a column the partition does not store is a
			// malformed plan — surface it instead of silently scanning
			// everything.
			c, err := m.meta.Col(p.Col)
			if err != nil {
				m.releaseMeta()
				return fmt.Errorf("core: scan predicate: %w", err)
			}
			if bp := blockPredFor(p, c.Type); bp != nil {
				qr, err := m.meta.QualifyingRanges(p.Col, bp)
				if err != nil {
					m.releaseMeta()
					return err
				}
				ranges = colstore.IntersectRanges(ranges, qr)
			}
			if m.pred.SkipOnly {
				continue
			}
			slot := -1
			for i, name := range m.cols {
				if name == p.Col {
					slot = i
					break
				}
			}
			if slot < 0 {
				m.releaseMeta()
				return fmt.Errorf("core: predicate column %q is not in the scan projection of %s", p.Col, m.meta.Table)
			}
			keep, err := compileRowFilter(p, c.Type)
			if err != nil {
				m.releaseMeta()
				return err
			}
			rf := rowFilter{slot: slot, keep: keep}
			fillCodeSpace(&rf, p)
			m.filters = append(m.filters, rf)
			seen := false
			for _, s := range m.leadSlots {
				if s == slot {
					seen = true
					break
				}
			}
			if !seen {
				m.leadSlots = append(m.leadSlots, slot)
			}
		}
	}
	sc, err := colstore.NewScanner(m.eng.fs, m.meta, m.node, m.cols, ranges)
	if err != nil {
		m.releaseMeta()
		return err
	}
	sc.SetCache(m.eng.blockCache)
	sc.SetCodeExec(m.codeExec)
	m.sc = sc
	m.codeSpace = m.codeExec && m.pred != nil && m.pred.CodeSpace && len(m.filters) > 0
	if m.codeSpace {
		m.skip = make([]bool, len(m.filters))
	}
	schema := m.meta.Schema()
	m.readM = pdt.NewMerger(m.readPDT, schema, m.colIdx)
	m.writeM = pdt.NewMerger(m.writePDT, schema, m.colIdx)
	m.stage = 0
	return nil
}

// Next implements exec.Operator. The query context is checked once per
// batch: a cancelled or timed-out query stops issuing block reads
// immediately instead of draining the partition.
func (m *mscan) Next() (*vector.Batch, error) {
	for {
		if err := m.ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: scan of %s.p%d canceled: %w", m.meta.Table, m.meta.Partition, context.Cause(m.ctx))
		}
		switch m.stage {
		case 0:
			// Stage-0 clamping: only the predicate columns (lead slots)
			// bound the span, so a span rejected wholesale never positions
			// — let alone decodes — a payload block.
			lead := m.leadSlots
			if len(m.filters) == 0 {
				lead = nil // no filtering: clamp on all columns as before
			}
			start, n, err := m.sc.NextSpan(lead)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				m.stage = 1
				continue
			}
			// A span no delta touches can be served straight off the column
			// blocks; spans with deltas merge first and filter after, since
			// a modify can flip a row's qualification either way.
			needMerge := false
			if m.readM.HasDeltas() || m.writeM.HasDeltas() {
				if m.readM.HasDeltasIn(start, start+int64(n)) {
					needMerge = true
				} else {
					rid := m.readM.FirstRid(start)
					needMerge = m.writeM.HasDeltasIn(rid, rid+int64(n))
				}
			}
			if !needMerge {
				if len(m.filters) == 0 {
					b, err := m.denseSpan(start, n)
					if err != nil {
						return nil, err
					}
					return b, nil
				}
				sel, all, dead, err := m.evalSpan(start, n)
				if err != nil {
					return nil, err
				}
				if dead {
					m.spansPruned++
					continue
				}
				b, err := m.gatherSpan(start, n, sel, all)
				if err != nil {
					return nil, err
				}
				return b, nil
			}
			b, err := m.denseSpan(start, n)
			if err != nil {
				return nil, err
			}
			b1, rid1, err := m.readM.MergeRange(b, start)
			if err != nil {
				return nil, err
			}
			if b1.Len() == 0 {
				continue
			}
			b2, _, err := m.writeM.MergeRange(b1, rid1)
			if err != nil {
				return nil, err
			}
			if b2.Len() == 0 {
				continue
			}
			if out := m.filterBatch(b2); out != nil {
				return out, nil
			}
		case 1:
			m.stage = 2
			if tail, rid := m.readM.Tail(); tail != nil {
				b2, _, err := m.writeM.MergeRange(tail, rid)
				if err != nil {
					return nil, err
				}
				if b2.Len() > 0 {
					if out := m.filterBatch(b2); out != nil {
						return out, nil
					}
				}
			}
		case 2:
			m.stage = 3
			if tail, _ := m.writeM.Tail(); tail != nil && tail.Len() > 0 {
				if out := m.filterBatch(tail); out != nil {
					return out, nil
				}
			}
		default:
			return nil, nil
		}
	}
}

// denseSpan decodes all projected columns of a span as a dense batch.
func (m *mscan) denseSpan(start int64, n int) (*vector.Batch, error) {
	b := &vector.Batch{Vecs: make([]*vector.Vec, len(m.cols))}
	for i := range m.cols {
		v, err := m.sc.ColVec(i, start, n)
		if err != nil {
			return nil, err
		}
		b.Vecs[i] = v
	}
	return b, nil
}

// evalSpan runs the compiled conjuncts over a span, decoding predicate
// columns lazily (a conjunct that kills the span stops later predicate
// columns from being decoded at all).
//
// When the predicate set is marked CodeSpace, a verdict phase runs first,
// entirely on compression metadata: integer conjuncts compare against block
// value bounds (MinMax summaries or PFOR frame bounds) and string conjuncts
// against the block dictionary. A dead verdict prunes the span before any
// code stream is unpacked; an all-pass verdict elides that conjunct's row
// kernel for the span.
func (m *mscan) evalSpan(start int64, n int) (sel []int32, all, dead bool, err error) {
	if m.codeSpace {
		dead, err = m.verdictSpan(start)
		if err != nil {
			return nil, false, false, err
		}
		if dead {
			return nil, false, true, nil
		}
	}
	all = true
	for fi := range m.filters {
		if m.codeSpace && m.skip[fi] {
			continue
		}
		f := &m.filters[fi]
		v, verr := m.sc.ColVec(f.slot, start, n)
		if verr != nil {
			return nil, false, false, verr
		}
		var cand []int32
		if !all {
			cand = sel
		}
		out, okAll := f.eval(v, cand)
		if all && okAll {
			continue
		}
		sel, all = out, false
		if len(sel) == 0 {
			return nil, false, true, nil
		}
	}
	return sel, all, false, nil
}

// verdictSpan runs the pre-decode verdict phase over one span, filling
// m.skip. Integer bound checks go first — they read only metadata — so a
// span dead on an integer conjunct never even opens a string block's
// dictionary.
func (m *mscan) verdictSpan(start int64) (dead bool, err error) {
	for fi := range m.filters {
		m.skip[fi] = false
	}
	for fi := range m.filters {
		f := &m.filters[fi]
		if !f.hasBounds {
			continue
		}
		lo, hi, ok := m.sc.SpanValueBounds(f.slot, start)
		if !ok {
			continue
		}
		if lo > f.hi || hi < f.lo {
			return true, nil
		}
		if f.exact && lo >= f.lo && hi <= f.hi {
			m.skip[fi] = true
		}
	}
	for fi := range m.filters {
		f := &m.filters[fi]
		if f.strEval == nil {
			continue
		}
		dict, derr := m.sc.SpanDict(f.slot, start)
		if derr != nil {
			return false, derr
		}
		if dict == nil {
			continue
		}
		_, nTrue := f.dictMask(dict)
		if nTrue == 0 {
			return true, nil
		}
		if nTrue == dict.Len() {
			m.skip[fi] = true
		}
	}
	return false, nil
}

// gatherSpan materializes the output batch of a filtered span: fully
// surviving spans decode dense (zero-copy views), partial survivors gather
// only the selected rows of every column.
func (m *mscan) gatherSpan(start int64, n int, sel []int32, all bool) (*vector.Batch, error) {
	b := &vector.Batch{Vecs: make([]*vector.Vec, len(m.cols))}
	for i := range m.cols {
		var v *vector.Vec
		var err error
		if all {
			v, err = m.sc.ColVec(i, start, n)
		} else {
			v, err = m.sc.GatherCol(i, start, sel)
		}
		if err != nil {
			return nil, err
		}
		b.Vecs[i] = v
	}
	vector.CheckBatch(b)
	return b, nil
}

// filterBatch applies the compiled conjuncts to a dense merged or tail
// batch, returning nil when no row survives (callers continue the scan
// loop). Without filters the batch passes through.
func (m *mscan) filterBatch(b *vector.Batch) *vector.Batch {
	if len(m.filters) == 0 {
		return b
	}
	var sel []int32
	all := true
	for fi := range m.filters {
		f := &m.filters[fi]
		var cand []int32
		if !all {
			cand = sel
		}
		out, okAll := f.eval(b.Vecs[f.slot], cand)
		if all && okAll {
			continue
		}
		sel, all = out, false
		if len(sel) == 0 {
			return nil
		}
	}
	if all {
		return b
	}
	out := &vector.Batch{Vecs: b.Vecs, Sel: sel}
	vector.CheckBatch(out)
	return out
}

func (m *mscan) releaseMeta() {
	if m.gen != nil {
		m.part.release(m.gen, m.eng.fs)
		m.gen, m.meta = nil, nil
	}
}

// Close implements exec.Operator: it releases the scanner's decoded block
// cache and the merger snapshots so a finished (or abandoned) scan does not
// pin column blocks and PDT entry lists in memory, unpins the metadata
// generation (triggering deferred deletion of superseded files once the
// last reader of a retired generation is gone), and folds the scanner's IO
// counters into the engine-wide scan statistics.
func (m *mscan) Close() error {
	if m.sc != nil {
		st := m.sc.Stats()
		m.eng.scanBlocksRead.Add(st.BlocksRead)
		m.eng.scanBytesDecoded.Add(st.BytesDecoded)
		m.eng.scanCacheHits.Add(st.CacheHits)
		m.eng.scanSpansPruned.Add(m.spansPruned)
		m.eng.scanBytesSkipped.Add(st.BytesSkipped)
		m.eng.scanBytesMaterialized.Add(st.BytesMaterialized)
		m.io.BlocksRead += st.BlocksRead
		m.io.BytesDecoded += st.BytesDecoded
		m.io.CacheHits += st.CacheHits
		m.io.SpansPruned += m.spansPruned
		m.io.BytesSkipped += st.BytesSkipped
		m.io.BytesMaterialized += st.BytesMaterialized
		m.spansPruned = 0
		m.sc.Close()
		m.sc = nil
	}
	m.readM, m.writeM = nil, nil
	m.readPDT, m.writePDT = nil, nil
	m.releaseMeta()
	debugCheckUnpinned(m)
	m.stage = 3
	return nil
}
