package core

import (
	"fmt"

	"vectorh/internal/colstore"
	"vectorh/internal/exec"
	"vectorh/internal/pdt"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// The engine implements rewriter.ScanProvider: MScan operators read
// compressed column blocks (with MinMax skipping) and merge the partition's
// PDT layers positionally — every query sees the latest committed state
// without the scan touching keys (§6).

// ResponsibleParts implements rewriter.ScanProvider.
func (e *Engine) ResponsibleParts(table string, node int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok || node >= len(e.active) {
		return nil
	}
	name := e.active[node]
	var out []int
	for p, part := range t.Parts {
		if part.Responsible == name {
			out = append(out, p)
		}
	}
	return out
}

// PartitionScan implements rewriter.ScanProvider.
func (e *Engine) PartitionScan(table string, partIdx int, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	e.mu.Lock()
	t, ok := e.tables[table]
	var nodeName string
	if node < len(e.active) {
		nodeName = e.active[node]
	}
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if partIdx < 0 || partIdx >= len(t.Parts) {
		return nil, fmt.Errorf("core: %s has no partition %d", table, partIdx)
	}
	return e.newMScan(t, t.Parts[partIdx], cols, pred, nodeName)
}

// ReplicatedScan implements rewriter.ScanProvider.
func (e *Engine) ReplicatedScan(table string, cols []string, pred *rewriter.ScanPred, node int) (exec.Operator, error) {
	e.mu.Lock()
	t, ok := e.tables[table]
	var nodeName string
	if node < len(e.active) {
		nodeName = e.active[node]
	}
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	if len(t.Parts) == 0 {
		return nil, fmt.Errorf("core: table %q has no partitions", table)
	}
	return e.newMScan(t, t.Parts[0], cols, pred, nodeName)
}

// mscan streams one partition: column blocks merged through the Read- and
// Write-PDT layers, with MinMax-skipped ranges and the PDT tail inserts.
type mscan struct {
	eng      *Engine
	meta     *colstore.PartitionMeta
	node     string
	cols     []string
	colIdx   []int
	pred     *rewriter.ScanPred
	readPDT  *pdt.PDT
	writePDT *pdt.PDT

	sc      *colstore.Scanner
	readM   *pdt.Merger
	writeM  *pdt.Merger
	stage   int // 0=blocks, 1=read tail, 2=write tail, 3=done
	started bool
}

func (e *Engine) newMScan(t *Table, part *Partition, cols []string, pred *rewriter.ScanPred, node string) (exec.Operator, error) {
	state, err := e.mgr.Part(part.Key)
	if err != nil {
		return nil, err
	}
	schema := t.Info.Schema
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = schema.Index(c)
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("core: no column %q in %s", c, t.Info.Name)
		}
	}
	m := &mscan{
		eng: e, meta: part.Meta, node: node, cols: cols, colIdx: colIdx, pred: pred,
		// Snapshot the PDT layers: commits replace masters copy-on-write,
		// so a running scan keeps a stable image.
		readPDT:  state.Read,
		writePDT: state.Write,
	}
	return m, nil
}

// Open implements exec.Operator.
func (m *mscan) Open() error {
	ranges := m.meta.FullRange()
	if m.pred != nil {
		// A skip hint naming a column the partition does not store is a
		// malformed plan — surface it instead of silently scanning
		// everything. A column of a kind without an int64 MinMax index
		// (string, float) merely has no skip opportunity.
		c, err := m.meta.Col(m.pred.Col)
		if err != nil {
			return fmt.Errorf("core: MinMax skip hint: %w", err)
		}
		if c.Type.Kind == vector.Int32 || c.Type.Kind == vector.Int64 {
			qr, err := m.meta.QualifyingRanges(m.pred.Col, colstore.Int64RangePred(m.pred.Lo, m.pred.Hi))
			if err != nil {
				return err
			}
			ranges = colstore.IntersectRanges(ranges, qr)
		}
	}
	sc, err := colstore.NewScanner(m.eng.fs, m.meta, m.node, m.cols, ranges)
	if err != nil {
		return err
	}
	m.sc = sc
	schema := m.meta.Schema()
	m.readM = pdt.NewMerger(m.readPDT, schema, m.colIdx)
	m.writeM = pdt.NewMerger(m.writePDT, schema, m.colIdx)
	m.stage = 0
	m.started = true
	return nil
}

// Next implements exec.Operator.
func (m *mscan) Next() (*vector.Batch, error) {
	for {
		switch m.stage {
		case 0:
			b, sid, err := m.sc.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				m.stage = 1
				continue
			}
			if !m.readM.HasDeltas() && !m.writeM.HasDeltas() {
				return b, nil // fast path: never-updated partition
			}
			b1, rid1, err := m.readM.MergeRange(b, sid)
			if err != nil {
				return nil, err
			}
			if b1.Len() == 0 {
				continue
			}
			b2, _, err := m.writeM.MergeRange(b1, rid1)
			if err != nil {
				return nil, err
			}
			if b2.Len() == 0 {
				continue
			}
			return b2, nil
		case 1:
			m.stage = 2
			if tail, rid := m.readM.Tail(); tail != nil {
				b2, _, err := m.writeM.MergeRange(tail, rid)
				if err != nil {
					return nil, err
				}
				if b2.Len() > 0 {
					return b2, nil
				}
			}
		case 2:
			m.stage = 3
			if tail, _ := m.writeM.Tail(); tail != nil && tail.Len() > 0 {
				return tail, nil
			}
		default:
			return nil, nil
		}
	}
}

// Close implements exec.Operator: it releases the scanner's decoded block
// cache and the merger snapshots so a finished (or abandoned) scan does not
// pin column blocks and PDT entry lists in memory.
func (m *mscan) Close() error {
	if m.sc != nil {
		m.sc.Close()
		m.sc = nil
	}
	m.readM, m.writeM = nil, nil
	m.stage = 3
	return nil
}
