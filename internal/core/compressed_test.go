package core

import (
	"fmt"
	"testing"

	"vectorh/internal/colstore"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// runCodeBoth executes a plan with compressed-domain execution on and off
// and asserts the row sets are identical; it returns the rows.
func runCodeBoth(t *testing.T, e *Engine, q plan.Node) [][]any {
	t.Helper()
	on, off := true, false
	rOn, err := e.QueryOpts(q, QueryOptions{CompressedExec: &on})
	if err != nil {
		t.Fatalf("compressed exec on: %v", err)
	}
	rOff, err := e.QueryOpts(q, QueryOptions{CompressedExec: &off})
	if err != nil {
		t.Fatalf("compressed exec off: %v", err)
	}
	if len(rOn.Rows) != len(rOff.Rows) {
		t.Fatalf("row count diverged: code-space=%d value-space=%d", len(rOn.Rows), len(rOff.Rows))
	}
	for i := range rOn.Rows {
		for c := range rOn.Rows[i] {
			if rOn.Rows[i][c] != rOff.Rows[i][c] {
				t.Fatalf("row %d col %d diverged: code-space=%v value-space=%v",
					i, c, rOn.Rows[i][c], rOff.Rows[i][c])
			}
		}
	}
	return rOn.Rows
}

// TestCodeSpaceDictVerdictPrunesDecode verifies the dictionary verdict does
// physical work that MinMax skipping cannot. Every block's status column
// holds both "apple" and "cherry", and the query asks for "banana" — inside
// every block's [StrMin, StrMax], so summary skipping keeps every block.
// The dictionary probe sees "banana" in no block dictionary and must prune
// each span before the code stream (or any other column) is decoded; the
// value-space pipeline decodes the full status column to learn the same.
func TestCodeSpaceDictVerdictPrunesDecode(t *testing.T) {
	// Cache disabled: the comparison below charges decoded bytes to each
	// run, which a shared decoded-block cache would hide.
	e, err := New(Config{
		Nodes:           []string{"node1", "node2", "node3"},
		ThreadsPerNode:  2,
		BlockSize:       1 << 16,
		Format:          colstore.Format{BlockSize: 4096, BlocksPerChunk: 16, MaxRowsPerBlock: 256},
		MsgBytes:        4096,
		BlockCacheBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := vector.Schema{
		{Name: "key", Type: vector.TInt64},
		{Name: "status", Type: vector.TString},
		{Name: "payload", Type: vector.TString},
	}
	if err := e.CreateTable(rewriter.TableInfo{
		Name: "cevents", Schema: schema, PartitionKey: "key", Partitions: 4,
	}); err != nil {
		t.Fatal(err)
	}
	b := vector.NewBatchForSchema(schema, 20000)
	for i := 0; i < 20000; i++ {
		status := "apple"
		if i%2 == 1 {
			status = "cherry"
		}
		b.AppendRow(int64(i), status, fmt.Sprintf("payload-%032d", i))
	}
	if err := e.Load("cevents", []*vector.Batch{b}); err != nil {
		t.Fatal(err)
	}

	f := plan.Filter(plan.Scan("cevents", "key", "status", "payload"),
		plan.EQ(plan.Col("status"), plan.Str("banana")))
	f.Push(&plan.ScanPredSet{Preds: []plan.ColPred{plan.StrEq("status", "banana")}}, nil)
	q := plan.Node(f)

	on, off := true, false
	s0 := e.ScanStats()
	rOn, err := e.QueryOpts(q, QueryOptions{CompressedExec: &on})
	if err != nil {
		t.Fatal(err)
	}
	s1 := e.ScanStats()
	rOff, err := e.QueryOpts(q, QueryOptions{CompressedExec: &off})
	if err != nil {
		t.Fatal(err)
	}
	s2 := e.ScanStats()
	if len(rOn.Rows) != 0 || len(rOff.Rows) != 0 {
		t.Fatalf("phantom rows: on=%d off=%d", len(rOn.Rows), len(rOff.Rows))
	}

	onBytes := s1.BytesDecoded - s0.BytesDecoded
	offBytes := s2.BytesDecoded - s1.BytesDecoded
	if onBytes*2 >= offBytes {
		t.Fatalf("dict verdict should decode far fewer bytes: on=%d off=%d", onBytes, offBytes)
	}
	if pruned := s1.SpansPruned - s0.SpansPruned; pruned == 0 {
		t.Fatal("every span should have been verdict-pruned before decode")
	}
}

// TestCodeSpaceParityAcrossDeltas locks the correctness property of
// compressed-domain execution: with string predicates evaluated as
// dictionary verdicts and code-space sieves, results stay row-identical to
// the value-space pipeline through every PDT state — clean blocks, modify
// deltas that flip qualification both ways (served value-space by the
// merge, exercising the fallback kernels), tail inserts in and out of the
// predicate, deletes — and again after propagation rewrites the blocks
// (fresh dictionaries).
func TestCodeSpaceParityAcrossDeltas(t *testing.T) {
	e := testEngine(t, 3)
	schema := vector.Schema{
		{Name: "key", Type: vector.TInt64},
		{Name: "status", Type: vector.TString},
	}
	if err := e.CreateTable(rewriter.TableInfo{
		Name: "corders", Schema: schema, PartitionKey: "key", Partitions: 4, ClusteredOn: "key",
	}); err != nil {
		t.Fatal(err)
	}
	states := []string{"open", "paid", "void"}
	b := vector.NewBatchForSchema(schema, 4000)
	for i := 0; i < 4000; i++ {
		b.AppendRow(int64(i), states[i%3])
	}
	if err := e.Load("corders", []*vector.Batch{b}); err != nil {
		t.Fatal(err)
	}

	f := plan.Filter(plan.Scan("corders", "key", "status"),
		plan.EQ(plan.Col("status"), plan.Str("paid")))
	f.Push(&plan.ScanPredSet{Preds: []plan.ColPred{plan.StrEq("status", "paid")}}, nil)
	q := plan.Node(plan.OrderBy(f, plan.Asc(plan.Col("key"))))

	base := runCodeBoth(t, e, q)
	if len(base) == 0 {
		t.Fatal("predicate selected nothing; test data broken")
	}

	// Flip qualification via modifies: key 1 was "paid" (1%3==1), key 3
	// was "open"; swap their states so one row leaves and one enters.
	if _, err := e.UpdateWhere("corders",
		plan.EQ(plan.Col("key"), plan.Int(1)),
		[]string{"status"}, []plan.Expr{plan.Str("void")}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateWhere("corders",
		plan.EQ(plan.Col("key"), plan.Int(3)),
		[]string{"status"}, []plan.Expr{plan.Str("paid")}); err != nil {
		t.Fatal(err)
	}
	afterMod := runCodeBoth(t, e, q)
	if len(afterMod) != len(base) {
		t.Fatalf("modify flips changed cardinality unexpectedly: %d -> %d", len(base), len(afterMod))
	}

	// Tail inserts: one qualifying, one not.
	ins := vector.NewBatchForSchema(schema, 2)
	ins.AppendRow(int64(9001), "paid")
	ins.AppendRow(int64(9002), "void")
	if err := e.InsertRows("corders", ins); err != nil {
		t.Fatal(err)
	}
	afterIns := runCodeBoth(t, e, q)
	if len(afterIns) != len(afterMod)+1 {
		t.Fatalf("tail insert: rows %d -> %d, want +1", len(afterMod), len(afterIns))
	}

	// Deletes shift positions under the scan.
	if _, err := e.DeleteWhere("corders",
		plan.LT(plan.Col("key"), plan.Int(50))); err != nil {
		t.Fatal(err)
	}
	runCodeBoth(t, e, q)

	// Propagate every partition so deltas become freshly encoded blocks
	// (new dictionaries), then re-verify.
	for p := 0; p < 4; p++ {
		if err := e.PropagatePartition("corders", p); err != nil {
			t.Fatal(err)
		}
	}
	runCodeBoth(t, e, q)
}
