//go:build vectorh_debug

package core

import "fmt"

// debugCheckRefs panics when a metadata-generation refcount goes negative:
// a scan released a pin it never took (or released twice). n is the count
// after the decrement.
func debugCheckRefs(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("core: metadata generation released below zero (refs=%d)", n))
	}
}

// debugCheckUnpinned panics when a scan finishes Close with its metadata
// pin still held — releaseMeta must have run on every path.
func debugCheckUnpinned(m *mscan) {
	if m.gen != nil {
		panic("core: mscan closed with its metadata generation still pinned")
	}
}
