// Race/stress coverage for the concurrent serving contract: N goroutines
// querying while a DML writer trickles RF1/RF2-style updates through the
// PDTs, with a low flush threshold so update propagation (tail-insert
// appends AND full partition rewrites) runs under the readers' feet. The
// whole file is meaningful chiefly under `go test -race`.
package core_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/plan"
	"vectorh/internal/tpch"
)

func stressEngine(t *testing.T) (*core.Engine, *tpch.Data) {
	t.Helper()
	e, err := core.New(core.Config{
		Nodes:          []string{"n1", "n2", "n3"},
		ThreadsPerNode: 2,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
		// Tiny flush threshold: almost every refresh transaction trips
		// update propagation, exercising copy-on-write metadata publishes
		// and deferred file deletion while scans are in flight.
		PDTFlushBytes: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := tpch.Generate(0.005, 3)
	if err := tpch.LoadIntoEngine(e, d, 6); err != nil {
		t.Fatal(err)
	}
	return e, d
}

// TestConcurrentReadersWithDMLWriter is the -race stress gate: 8 goroutines
// run TPC-H queries in a loop while a writer interleaves RF1 inserts, RF2
// deletes and an UPDATE, all racing update propagation.
func TestConcurrentReadersWithDMLWriter(t *testing.T) {
	e, d := stressEngine(t)
	queries := []int{1, 3, 5, 6, 9, 12, 14, 19}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(r+i)%len(queries)]
				p, err := tpch.BuildQuery(q, e)
				if err != nil {
					errs <- fmt.Errorf("reader %d Q%d build: %w", r, q, err)
					return
				}
				if _, err := e.Query(p); err != nil {
					errs <- fmt.Errorf("reader %d Q%d: %w", r, q, err)
					return
				}
			}
		}(r)
	}

	// The DML writer: RF1 inserts new orders/lineitems, an UPDATE touches
	// priorities (widening MinMax), RF2 deletes the inserted keys again.
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for round := int64(0); round < 4; round++ {
			ob, lb := tpch.RF1(d, 10, 100+round)
			if err := e.InsertRows("orders", ob); err != nil {
				errs <- fmt.Errorf("rf1 orders: %w", err)
				return
			}
			if err := e.InsertRows("lineitem", lb); err != nil {
				errs <- fmt.Errorf("rf1 lineitem: %w", err)
				return
			}
			if _, err := e.UpdateWhere("orders",
				plan.LT(plan.Col("o_orderkey"), plan.Int(100)),
				[]string{"o_orderpriority"}, []plan.Expr{plan.Str("1-URGENT")}); err != nil {
				errs <- fmt.Errorf("update: %w", err)
				return
			}
			keys := tpch.RF2Keys(d, 5, 200+round)
			for _, table := range []string{"lineitem", "orders"} {
				col := "l_orderkey"
				if table == "orders" {
					col = "o_orderkey"
				}
				if _, err := e.DeleteWhere(table, plan.InInt(plan.Col(col), keys...)); err != nil {
					errs <- fmt.Errorf("rf2 %s: %w", table, err)
					return
				}
			}
			// Force a full-rewrite propagation on a partition while
			// readers are live (deletes make the PDT non-tail-only).
			if err := e.PropagatePartition("orders", int(round)%6); err != nil {
				errs <- fmt.Errorf("propagate: %w", err)
				return
			}
		}
	}()

	<-writerDone
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Sanity: the engine is still consistent — a full scan agrees with the
	// catalog row count.
	for _, table := range []string{"orders", "lineitem"} {
		want, err := e.TableRows(table)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := e.Query(plan.Aggregate(plan.Scan(table), nil, plan.A("n", plan.CountStar, plan.Int(1))))
		if err != nil {
			t.Fatal(err)
		}
		if got := rows[0][0].(int64); got != want {
			t.Fatalf("%s: scan count %d vs catalog %d", table, got, want)
		}
	}
}

// TestQueryContextCancelStopsWorkers cancels a query mid-flight at the
// engine level and verifies (a) the error is a cancellation, (b) the
// spawned exchange/scan goroutines exit.
func TestQueryContextCancelStopsWorkers(t *testing.T) {
	e, _ := stressEngine(t)
	p, err := tpch.BuildQuery(9, e)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up, then baseline.
	if _, err := e.Query(p); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	sawCancel := false
	for i := 0; i < 20 && !sawCancel; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(1+i%5) * time.Millisecond)
			cancel()
		}()
		_, err := e.QueryContext(ctx, p)
		cancel()
		if err != nil {
			if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "cancel") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Skip("query always completed before cancellation on this machine")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after cancel: %d vs baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the engine still answers correctly.
	if _, err := e.Query(p); err != nil {
		t.Fatal(err)
	}
}

// TestQueryDeadline: an already-expired deadline fails fast, before any
// operator work.
func TestQueryDeadline(t *testing.T) {
	e, _ := stressEngine(t)
	p, err := tpch.BuildQuery(6, e)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.QueryContext(ctx, p); err == nil {
		t.Fatal("expired deadline did not fail the query")
	}
}
