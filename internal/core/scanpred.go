package core

import (
	"fmt"
	"math"

	"vectorh/internal/colstore"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// This file compiles a plan.ScanPredSet for one partition into its two
// runtime halves:
//
//   - a colstore.BlockPredicate per conjunct (the MinMax projection), used
//     at Open to compute qualifying row ranges — every column kind skips,
//     not just int64;
//   - a rowFilter per conjunct, evaluated vectorized inside the scan over
//     the decoded predicate columns. The kernels reproduce the expression
//     interpreter's arithmetic exactly (decimals compare as
//     float64(v)*scale, ints widen to int64, strings compare raw), so a
//     Select elided in favor of scan-side filtering returns bit-identical
//     rows.

// filterFn filters candidate positions of one vector: cand nil means all
// rows. It returns the survivors and whether every candidate survived (in
// which case out aliases cand and may be nil).
type filterFn func(v *vector.Vec, cand []int32) (out []int32, all bool)

// rowFilter is one compiled conjunct bound to a projection slot.
type rowFilter struct {
	slot int
	keep filterFn
}

// blockPredFor returns the MinMax block predicate of a conjunct for a
// column of the given type, or nil when the summary kind offers no skipping
// opportunity for it (never an error: skipping is best-effort).
func blockPredFor(p plan.ColPred, t vector.Type) colstore.BlockPredicate {
	intKind := t.Kind == vector.Int32 || t.Kind == vector.Int64
	switch p.Op {
	case plan.PredIntRange:
		if intKind {
			return colstore.Int64RangePred(p.IntLo, p.IntHi)
		}
	case plan.PredDecRange:
		if intKind {
			// Conservative storage-unit bounds: one extra unit of slack on
			// each side absorbs float rounding, so the row kernel (exact
			// float compare) decides boundary values, never the skip.
			lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
			if !math.IsInf(p.FloatLo, -1) {
				lo = int64(math.Floor(p.FloatLo/p.Scale)) - 1
			}
			if !math.IsInf(p.FloatHi, 1) {
				hi = int64(math.Ceil(p.FloatHi/p.Scale)) + 1
			}
			return colstore.Int64RangePred(lo, hi)
		}
	case plan.PredFloatRange:
		if t.Kind == vector.Float64 {
			return colstore.Float64RangePred(p.FloatLo, p.FloatHi)
		}
	case plan.PredStrRange:
		if t.Kind == vector.String {
			return colstore.StrRangePred(p.StrLo, p.StrHi, p.HasStrLo, p.HasStrHi)
		}
	case plan.PredIntIn:
		if intKind && len(p.Ints) > 0 {
			lo, hi := p.Ints[0], p.Ints[0]
			for _, x := range p.Ints[1:] {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			return colstore.Int64RangePred(lo, hi)
		}
	case plan.PredStrIn:
		if t.Kind == vector.String && len(p.Strs) > 0 {
			lo, hi := p.Strs[0], p.Strs[0]
			for _, s := range p.Strs[1:] {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			return colstore.StrRangePred(lo, hi, true, true)
		}
	}
	return nil
}

// compileRowFilter builds the vectorized row kernel of a conjunct for a
// column of the given type. Unlike block skipping, row filtering is part of
// the scan's correctness contract, so a kind mismatch is an error.
func compileRowFilter(p plan.ColPred, t vector.Type) (filterFn, error) {
	intKind := t.Kind == vector.Int32 || t.Kind == vector.Int64
	switch p.Op {
	case plan.PredIntRange:
		if !intKind {
			return nil, fmt.Errorf("core: int-range predicate on %s column %q", t, p.Col)
		}
		return intRangeFilter(p.IntLo, p.IntHi), nil
	case plan.PredDecRange:
		if !intKind {
			return nil, fmt.Errorf("core: decimal-range predicate on %s column %q", t, p.Col)
		}
		return decRangeFilter(p), nil
	case plan.PredFloatRange:
		if t.Kind != vector.Float64 {
			return nil, fmt.Errorf("core: float-range predicate on %s column %q", t, p.Col)
		}
		return floatRangeFilter(p), nil
	case plan.PredStrRange:
		if t.Kind != vector.String {
			return nil, fmt.Errorf("core: string-range predicate on %s column %q", t, p.Col)
		}
		return strRangeFilter(p), nil
	case plan.PredIntIn:
		if !intKind {
			return nil, fmt.Errorf("core: integer IN predicate on %s column %q", t, p.Col)
		}
		set := make(map[int64]struct{}, len(p.Ints))
		for _, x := range p.Ints {
			set[x] = struct{}{}
		}
		return membershipFilter(func(v *vector.Vec, i int32) bool {
			_, ok := set[intAt(v, i)]
			return ok
		}), nil
	case plan.PredStrIn:
		if t.Kind != vector.String {
			return nil, fmt.Errorf("core: string IN predicate on %s column %q", t, p.Col)
		}
		//lint:hotpath built once per scan open, not per batch; probed by the row kernel below
		set := make(map[string]struct{}, len(p.Strs))
		for _, s := range p.Strs {
			set[s] = struct{}{}
		}
		return membershipFilter(func(v *vector.Vec, i int32) bool {
			_, ok := set[v.Strings()[i]]
			return ok
		}), nil
	}
	return nil, fmt.Errorf("core: unknown predicate op %d on column %q", p.Op, p.Col)
}

func intAt(v *vector.Vec, i int32) int64 {
	if v.Kind() == vector.Int32 {
		return int64(v.Int32s()[i])
	}
	return v.Int64s()[i]
}

func intRangeFilter(lo, hi int64) filterFn {
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		if v.Kind() == vector.Int32 {
			xs := v.Int32s()
			return sieve(len(xs), cand, func(i int32) bool {
				x := int64(xs[i])
				return x >= lo && x <= hi
			})
		}
		xs := v.Int64s()
		return sieve(len(xs), cand, func(i int32) bool {
			return xs[i] >= lo && xs[i] <= hi
		})
	}
}

// decRangeFilter compares float64(v)*scale against the bounds — the exact
// arithmetic expr.Scaled + float comparison performs, so scan-side
// filtering of decimal conjuncts is bit-identical to a Select.
func decRangeFilter(p plan.ColPred) filterFn {
	test := floatBoundsTest(p)
	scale := p.Scale
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		if v.Kind() == vector.Int32 {
			xs := v.Int32s()
			return sieve(len(xs), cand, func(i int32) bool { return test(float64(xs[i]) * scale) })
		}
		xs := v.Int64s()
		return sieve(len(xs), cand, func(i int32) bool { return test(float64(xs[i]) * scale) })
	}
}

func floatRangeFilter(p plan.ColPred) filterFn {
	test := floatBoundsTest(p)
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		xs := v.Float64s()
		return sieve(len(xs), cand, func(i int32) bool { return test(xs[i]) })
	}
}

// floatBoundsTest builds the bounds check; unset bounds (±Inf) are not
// compared at all, matching a predicate that simply lacks that conjunct.
func floatBoundsTest(p plan.ColPred) func(float64) bool {
	lo, hi := p.FloatLo, p.FloatHi
	hasLo, hasHi := !math.IsInf(lo, -1), !math.IsInf(hi, 1)
	loStrict, hiStrict := p.LoStrict, p.HiStrict
	return func(f float64) bool {
		if hasLo {
			if loStrict {
				if !(f > lo) {
					return false
				}
			} else if !(f >= lo) {
				return false
			}
		}
		if hasHi {
			if hiStrict {
				if !(f < hi) {
					return false
				}
			} else if !(f <= hi) {
				return false
			}
		}
		return true
	}
}

func strRangeFilter(p plan.ColPred) filterFn {
	lo, hi := p.StrLo, p.StrHi
	hasLo, hasHi := p.HasStrLo, p.HasStrHi
	loStrict, hiStrict := p.LoStrict, p.HiStrict
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		xs := v.Strings()
		return sieve(len(xs), cand, func(i int32) bool {
			s := xs[i]
			if hasLo {
				if loStrict {
					if !(s > lo) {
						return false
					}
				} else if !(s >= lo) {
					return false
				}
			}
			if hasHi {
				if hiStrict {
					if !(s < hi) {
						return false
					}
				} else if !(s <= hi) {
					return false
				}
			}
			return true
		})
	}
}

func membershipFilter(member func(v *vector.Vec, i int32) bool) filterFn {
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		return sieve(v.Len(), cand, func(i int32) bool { return member(v, i) })
	}
}

// sieve runs a position predicate over the candidates (cand nil = 0..n-1).
// When narrowing an existing candidate list it filters in place — the
// previous round's selection is dead after this one.
func sieve(n int, cand []int32, keep func(int32) bool) ([]int32, bool) {
	if cand == nil {
		var out []int32
		for i := 0; i < n; i++ {
			if keep(int32(i)) {
				if out == nil {
					out = make([]int32, 0, n-i)
				}
				out = append(out, int32(i))
			}
		}
		if len(out) == n {
			return nil, true
		}
		return out, false
	}
	out := cand[:0]
	for _, p := range cand {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out, len(out) == len(cand)
}
