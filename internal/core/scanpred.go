package core

import (
	"fmt"
	"math"

	"vectorh/internal/colstore"
	"vectorh/internal/compress"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

// This file compiles a plan.ScanPredSet for one partition into its two
// runtime halves:
//
//   - a colstore.BlockPredicate per conjunct (the MinMax projection), used
//     at Open to compute qualifying row ranges — every column kind skips,
//     not just int64;
//   - a rowFilter per conjunct, evaluated vectorized inside the scan over
//     the decoded predicate columns. The kernels reproduce the expression
//     interpreter's arithmetic exactly (decimals compare as
//     float64(v)*scale, ints widen to int64, strings compare raw), so a
//     Select elided in favor of scan-side filtering returns bit-identical
//     rows.

// filterFn filters candidate positions of one vector: cand nil means all
// rows. It returns the survivors and whether every candidate survived (in
// which case out aliases cand and may be nil).
type filterFn func(v *vector.Vec, cand []int32) (out []int32, all bool)

// rowFilter is one compiled conjunct bound to a projection slot, together
// with its compressed-domain forms:
//
//   - strEval is the scalar evaluator of a string conjunct, applied once
//     per dictionary entry instead of once per row — a span over a
//     PDICT-encoded block is verdicted (and, when partial, sieved) through
//     the resulting code mask without touching a single string;
//   - hasBounds/lo/hi verdict an integer conjunct against block value
//     bounds (MinMax summaries, or PFOR frame bounds when the summary is
//     absent) before anything is unpacked. exact marks the bounds as the
//     predicate itself: only then does "block entirely inside" prove every
//     row passes (slack decimal bounds and IN-list envelopes support only
//     the disjointness, skip-all direction).
type rowFilter struct {
	slot int
	keep filterFn

	strEval   func(string) bool
	hasBounds bool
	lo, hi    int64
	exact     bool

	// Cache-of-one dictionary mask: per-entry pass/fail for the block
	// dictionary most recently seen, reused across the many spans and the
	// verdict+sieve phases that share one block.
	maskDict *compress.StrDict
	mask     []bool
	maskTrue int
}

// dictMask returns the conjunct's pass/fail mask over a block dictionary
// and the number of passing entries, computing it once per dictionary.
func (f *rowFilter) dictMask(d *compress.StrDict) ([]bool, int) {
	if f.maskDict == d {
		return f.mask, f.maskTrue
	}
	vals := d.Values
	if cap(f.mask) < len(vals) {
		f.mask = make([]bool, len(vals))
	} else {
		f.mask = f.mask[:len(vals)]
	}
	nTrue := 0
	for i, s := range vals {
		ok := f.strEval(s)
		f.mask[i] = ok
		if ok {
			nTrue++
		}
	}
	f.maskDict, f.maskTrue = d, nTrue
	return f.mask, nTrue
}

// eval applies the conjunct to one vector. Dictionary vectors of a string
// conjunct are sieved through the code mask — small-int compares, no string
// materialization; everything else runs the value-space kernel.
func (f *rowFilter) eval(v *vector.Vec, cand []int32) ([]int32, bool) {
	if f.strEval != nil && v.IsDict() {
		mask, nTrue := f.dictMask(v.Dict())
		codes := v.DictCodes()
		if nTrue == len(mask) {
			return cand, true
		}
		return sieve(len(codes), cand, func(i int32) bool { return mask[codes[i]] })
	}
	return f.keep(v, cand)
}

// fillCodeSpace derives the conjunct's compressed-domain forms. Always
// filled: the dict-aware eval path must work whenever the scanner serves
// code vectors, independent of whether pre-decode verdicts are enabled.
func fillCodeSpace(f *rowFilter, p plan.ColPred) {
	switch p.Op {
	case plan.PredStrRange:
		f.strEval = strBoundsTest(p)
	case plan.PredStrIn:
		//lint:hotpath scan-open setup: probed per dictionary entry, not per row
		set := make(map[string]struct{}, len(p.Strs))
		for _, s := range p.Strs {
			set[s] = struct{}{}
		}
		f.strEval = func(s string) bool {
			_, ok := set[s]
			return ok
		}
	case plan.PredIntRange:
		f.hasBounds, f.lo, f.hi, f.exact = true, p.IntLo, p.IntHi, true
	case plan.PredDecRange:
		// The same one-unit-slack storage bounds blockPredFor uses: safe for
		// disjointness, never for take-all (exact stays false).
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		if !math.IsInf(p.FloatLo, -1) {
			lo = int64(math.Floor(p.FloatLo/p.Scale)) - 1
		}
		if !math.IsInf(p.FloatHi, 1) {
			hi = int64(math.Ceil(p.FloatHi/p.Scale)) + 1
		}
		f.hasBounds, f.lo, f.hi = true, lo, hi
	case plan.PredIntIn:
		if len(p.Ints) > 0 {
			lo, hi := p.Ints[0], p.Ints[0]
			for _, x := range p.Ints[1:] {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			// Envelope of the membership list: disjoint blocks die, covered
			// blocks still need the per-row membership probe.
			f.hasBounds, f.lo, f.hi = true, lo, hi
		}
	}
}

// blockPredFor returns the MinMax block predicate of a conjunct for a
// column of the given type, or nil when the summary kind offers no skipping
// opportunity for it (never an error: skipping is best-effort).
func blockPredFor(p plan.ColPred, t vector.Type) colstore.BlockPredicate {
	intKind := t.Kind == vector.Int32 || t.Kind == vector.Int64
	switch p.Op {
	case plan.PredIntRange:
		if intKind {
			return colstore.Int64RangePred(p.IntLo, p.IntHi)
		}
	case plan.PredDecRange:
		if intKind {
			// Conservative storage-unit bounds: one extra unit of slack on
			// each side absorbs float rounding, so the row kernel (exact
			// float compare) decides boundary values, never the skip.
			lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
			if !math.IsInf(p.FloatLo, -1) {
				lo = int64(math.Floor(p.FloatLo/p.Scale)) - 1
			}
			if !math.IsInf(p.FloatHi, 1) {
				hi = int64(math.Ceil(p.FloatHi/p.Scale)) + 1
			}
			return colstore.Int64RangePred(lo, hi)
		}
	case plan.PredFloatRange:
		if t.Kind == vector.Float64 {
			return colstore.Float64RangePred(p.FloatLo, p.FloatHi)
		}
	case plan.PredStrRange:
		if t.Kind == vector.String {
			return colstore.StrRangePred(p.StrLo, p.StrHi, p.HasStrLo, p.HasStrHi)
		}
	case plan.PredIntIn:
		if intKind && len(p.Ints) > 0 {
			lo, hi := p.Ints[0], p.Ints[0]
			for _, x := range p.Ints[1:] {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			return colstore.Int64RangePred(lo, hi)
		}
	case plan.PredStrIn:
		if t.Kind == vector.String && len(p.Strs) > 0 {
			lo, hi := p.Strs[0], p.Strs[0]
			for _, s := range p.Strs[1:] {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			return colstore.StrRangePred(lo, hi, true, true)
		}
	}
	return nil
}

// compileRowFilter builds the vectorized row kernel of a conjunct for a
// column of the given type. Unlike block skipping, row filtering is part of
// the scan's correctness contract, so a kind mismatch is an error.
func compileRowFilter(p plan.ColPred, t vector.Type) (filterFn, error) {
	intKind := t.Kind == vector.Int32 || t.Kind == vector.Int64
	switch p.Op {
	case plan.PredIntRange:
		if !intKind {
			return nil, fmt.Errorf("core: int-range predicate on %s column %q", t, p.Col)
		}
		return intRangeFilter(p.IntLo, p.IntHi), nil
	case plan.PredDecRange:
		if !intKind {
			return nil, fmt.Errorf("core: decimal-range predicate on %s column %q", t, p.Col)
		}
		return decRangeFilter(p), nil
	case plan.PredFloatRange:
		if t.Kind != vector.Float64 {
			return nil, fmt.Errorf("core: float-range predicate on %s column %q", t, p.Col)
		}
		return floatRangeFilter(p), nil
	case plan.PredStrRange:
		if t.Kind != vector.String {
			return nil, fmt.Errorf("core: string-range predicate on %s column %q", t, p.Col)
		}
		return strRangeFilter(p), nil
	case plan.PredIntIn:
		if !intKind {
			return nil, fmt.Errorf("core: integer IN predicate on %s column %q", t, p.Col)
		}
		set := make(map[int64]struct{}, len(p.Ints))
		for _, x := range p.Ints {
			set[x] = struct{}{}
		}
		return membershipFilter(func(v *vector.Vec, i int32) bool {
			_, ok := set[intAt(v, i)]
			return ok
		}), nil
	case plan.PredStrIn:
		if t.Kind != vector.String {
			return nil, fmt.Errorf("core: string IN predicate on %s column %q", t, p.Col)
		}
		//lint:hotpath built once per scan open, not per batch; probed by the row kernel below
		set := make(map[string]struct{}, len(p.Strs))
		for _, s := range p.Strs {
			set[s] = struct{}{}
		}
		return membershipFilter(func(v *vector.Vec, i int32) bool {
			_, ok := set[v.Strings()[i]]
			return ok
		}), nil
	}
	return nil, fmt.Errorf("core: unknown predicate op %d on column %q", p.Op, p.Col)
}

func intAt(v *vector.Vec, i int32) int64 {
	if v.Kind() == vector.Int32 {
		return int64(v.Int32s()[i])
	}
	return v.Int64s()[i]
}

func intRangeFilter(lo, hi int64) filterFn {
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		if v.Kind() == vector.Int32 {
			xs := v.Int32s()
			return sieve(len(xs), cand, func(i int32) bool {
				x := int64(xs[i])
				return x >= lo && x <= hi
			})
		}
		xs := v.Int64s()
		return sieve(len(xs), cand, func(i int32) bool {
			return xs[i] >= lo && xs[i] <= hi
		})
	}
}

// decRangeFilter compares float64(v)*scale against the bounds — the exact
// arithmetic expr.Scaled + float comparison performs, so scan-side
// filtering of decimal conjuncts is bit-identical to a Select.
func decRangeFilter(p plan.ColPred) filterFn {
	test := floatBoundsTest(p)
	scale := p.Scale
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		if v.Kind() == vector.Int32 {
			xs := v.Int32s()
			return sieve(len(xs), cand, func(i int32) bool { return test(float64(xs[i]) * scale) })
		}
		xs := v.Int64s()
		return sieve(len(xs), cand, func(i int32) bool { return test(float64(xs[i]) * scale) })
	}
}

func floatRangeFilter(p plan.ColPred) filterFn {
	test := floatBoundsTest(p)
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		xs := v.Float64s()
		return sieve(len(xs), cand, func(i int32) bool { return test(xs[i]) })
	}
}

// floatBoundsTest builds the bounds check; unset bounds (±Inf) are not
// compared at all, matching a predicate that simply lacks that conjunct.
func floatBoundsTest(p plan.ColPred) func(float64) bool {
	lo, hi := p.FloatLo, p.FloatHi
	hasLo, hasHi := !math.IsInf(lo, -1), !math.IsInf(hi, 1)
	loStrict, hiStrict := p.LoStrict, p.HiStrict
	return func(f float64) bool {
		if hasLo {
			if loStrict {
				if !(f > lo) {
					return false
				}
			} else if !(f >= lo) {
				return false
			}
		}
		if hasHi {
			if hiStrict {
				if !(f < hi) {
					return false
				}
			} else if !(f <= hi) {
				return false
			}
		}
		return true
	}
}

func strRangeFilter(p plan.ColPred) filterFn {
	test := strBoundsTest(p)
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		xs := v.Strings()
		return sieve(len(xs), cand, func(i int32) bool { return test(xs[i]) })
	}
}

// strBoundsTest builds the scalar bounds check of a string range conjunct;
// it backs both the row kernel and the per-dictionary-entry evaluation.
func strBoundsTest(p plan.ColPred) func(string) bool {
	lo, hi := p.StrLo, p.StrHi
	hasLo, hasHi := p.HasStrLo, p.HasStrHi
	loStrict, hiStrict := p.LoStrict, p.HiStrict
	return func(s string) bool {
		if hasLo {
			if loStrict {
				if !(s > lo) {
					return false
				}
			} else if !(s >= lo) {
				return false
			}
		}
		if hasHi {
			if hiStrict {
				if !(s < hi) {
					return false
				}
			} else if !(s <= hi) {
				return false
			}
		}
		return true
	}
}

func membershipFilter(member func(v *vector.Vec, i int32) bool) filterFn {
	return func(v *vector.Vec, cand []int32) ([]int32, bool) {
		return sieve(v.Len(), cand, func(i int32) bool { return member(v, i) })
	}
}

// sieve runs a position predicate over the candidates (cand nil = 0..n-1).
// When narrowing an existing candidate list it filters in place — the
// previous round's selection is dead after this one.
func sieve(n int, cand []int32, keep func(int32) bool) ([]int32, bool) {
	if cand == nil {
		var out []int32
		for i := 0; i < n; i++ {
			if keep(int32(i)) {
				if out == nil {
					out = make([]int32, 0, n-i)
				}
				out = append(out, int32(i))
			}
		}
		if len(out) == n {
			return nil, true
		}
		return out, false
	}
	out := cand[:0]
	for _, p := range cand {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out, len(out) == len(cand)
}
