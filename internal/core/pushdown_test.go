package core

import (
	"fmt"
	"math"
	"testing"

	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

// pushdownQuery builds a filtered scan whose predicate is fully subsumed by
// a derived scan predicate set: o_date in a range and o_total in a decimal
// window. With pushdown on, the rewriter elides the Select and the scan
// both skips blocks and filters rows.
func pushdownQuery() plan.Node {
	lo := int64(vector.MustDate("1995-01-10"))
	hi := int64(vector.MustDate("1995-01-20"))
	pred := plan.AndAll(
		plan.GE(plan.Col("o_date"), plan.DateVal(int32(lo))),
		plan.LE(plan.Col("o_date"), plan.DateVal(int32(hi))),
		plan.GE(plan.Col("o_total"), plan.Float(100)),
	)
	f := plan.Filter(plan.Scan("orders", "o_orderkey", "o_date", "o_total"), pred)
	set := &plan.ScanPredSet{Preds: []plan.ColPred{
		plan.IntRange("o_date", lo, hi),
		{Col: "o_total", Op: plan.PredFloatRange, FloatLo: 100, FloatHi: math.Inf(1)},
	}}
	f.Push(set, nil)
	return plan.OrderBy(f, plan.Asc(plan.Col("o_orderkey")))
}

// runBoth executes a plan with scan pushdown on and off and asserts the row
// sets are identical; it returns the rows.
func runBoth(t *testing.T, e *Engine, q plan.Node) [][]any {
	t.Helper()
	on, off := true, false
	rOn, err := e.QueryOpts(q, QueryOptions{ScanPushdown: &on})
	if err != nil {
		t.Fatalf("pushdown on: %v", err)
	}
	rOff, err := e.QueryOpts(q, QueryOptions{ScanPushdown: &off})
	if err != nil {
		t.Fatalf("pushdown off: %v", err)
	}
	if len(rOn.Rows) != len(rOff.Rows) {
		t.Fatalf("row count diverged: pushdown=%d select-above-scan=%d", len(rOn.Rows), len(rOff.Rows))
	}
	for i := range rOn.Rows {
		for c := range rOn.Rows[i] {
			if rOn.Rows[i][c] != rOff.Rows[i][c] {
				t.Fatalf("row %d col %d diverged: pushdown=%v select=%v", i, c, rOn.Rows[i][c], rOff.Rows[i][c])
			}
		}
	}
	return rOn.Rows
}

// TestScanPushdownParityAcrossDeltas locks the core correctness property of
// late-materialized scans: with predicates evaluated inside the scan, the
// result stays row-identical to the Select-above-scan pipeline through
// every PDT state — clean blocks, modify deltas that flip qualification in
// both directions, tail inserts inside and outside the predicate range, and
// deletes — and again after propagation rewrites the blocks.
func TestScanPushdownParityAcrossDeltas(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 4000)
	q := pushdownQuery()

	base := runBoth(t, e, q)
	if len(base) == 0 {
		t.Fatal("predicate selected nothing; test data broken")
	}

	// Flip qualification via modifies: push some qualifying rows below the
	// o_total bound, and pull some non-qualifying rows into the date range.
	if _, err := e.UpdateWhere("orders",
		plan.EQ(plan.Col("o_orderkey"), plan.Int(150)),
		[]string{"o_total"}, []plan.Expr{plan.Float(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateWhere("orders",
		plan.EQ(plan.Col("o_orderkey"), plan.Int(3999)),
		[]string{"o_date"}, []plan.Expr{plan.DateVal(int32(vector.MustDate("1995-01-12")))}); err != nil {
		t.Fatal(err)
	}
	afterMod := runBoth(t, e, q)
	if len(afterMod) != len(base) {
		// one row left the window (o_total), one entered it (o_date)
		t.Fatalf("modify flips changed cardinality unexpectedly: %d -> %d", len(base), len(afterMod))
	}
	found3999 := false
	for _, r := range afterMod {
		if r[0].(int64) == 3999 {
			found3999 = true
		}
		if r[0].(int64) == 150 {
			t.Fatal("row 150 should have been filtered out after its o_total modify")
		}
	}
	if !found3999 {
		t.Fatal("row 3999 should qualify after its o_date modify")
	}

	// Tail inserts: one inside the window, one outside.
	ins := vector.NewBatchForSchema(ordersSchema, 2)
	ins.AppendRow(int64(9001), vector.MustDate("1995-01-15"), float64(500))
	ins.AppendRow(int64(9002), vector.MustDate("1997-06-01"), float64(500))
	if err := e.InsertRows("orders", ins); err != nil {
		t.Fatal(err)
	}
	afterIns := runBoth(t, e, q)
	if len(afterIns) != len(afterMod)+1 {
		t.Fatalf("tail insert inside window: rows %d -> %d, want +1", len(afterMod), len(afterIns))
	}

	// Deletes shift positions under the scan.
	if _, err := e.DeleteWhere("orders",
		plan.LT(plan.Col("o_orderkey"), plan.Int(50))); err != nil {
		t.Fatal(err)
	}
	runBoth(t, e, q)

	// Propagate every partition so deltas become blocks, then re-verify.
	for p := 0; p < 4; p++ {
		if err := e.PropagatePartition("orders", p); err != nil {
			t.Fatal(err)
		}
	}
	final := runBoth(t, e, q)
	if len(final) != len(afterIns) {
		t.Fatalf("propagation changed the visible rows: %d -> %d", len(afterIns), len(final))
	}
}

// TestLateMaterializationPrunesIO verifies the two-phase scan actually
// avoids physical work. The table is built so MinMax skipping cannot help:
// the predicate column holds odd values spanning a wide range per block,
// and the predicate asks for an even value inside that range — every block
// qualifies by summary, no row qualifies in fact. Late materialization must
// then prune every span after decoding only the predicate column, never
// touching the fat payload column the query projects.
func TestLateMaterializationPrunesIO(t *testing.T) {
	e := testEngine(t, 3)
	schema := vector.Schema{
		{Name: "key", Type: vector.TInt64},
		{Name: "noise", Type: vector.TInt64},
		{Name: "payload", Type: vector.TString},
	}
	if err := e.CreateTable(rewriter.TableInfo{
		Name: "events", Schema: schema, PartitionKey: "key", Partitions: 4,
	}); err != nil {
		t.Fatal(err)
	}
	b := vector.NewBatchForSchema(schema, 20000)
	for i := 0; i < 20000; i++ {
		b.AppendRow(int64(i), int64(2*i+1), fmt.Sprintf("payload-%032d", i))
	}
	if err := e.Load("events", []*vector.Batch{b}); err != nil {
		t.Fatal(err)
	}

	pred := plan.EQ(plan.Col("noise"), plan.Int(10000)) // even: never present
	f := plan.Filter(plan.Scan("events", "key", "noise", "payload"), pred)
	f.Push(&plan.ScanPredSet{Preds: []plan.ColPred{plan.IntRange("noise", 10000, 10000)}}, nil)
	q := plan.Node(f)

	on, off := true, false
	s0 := e.ScanStats()
	rOn, err := e.QueryOpts(q, QueryOptions{ScanPushdown: &on})
	if err != nil {
		t.Fatal(err)
	}
	s1 := e.ScanStats()
	rOff, err := e.QueryOpts(q, QueryOptions{ScanPushdown: &off})
	if err != nil {
		t.Fatal(err)
	}
	s2 := e.ScanStats()
	if len(rOn.Rows) != 0 || len(rOff.Rows) != 0 {
		t.Fatalf("phantom rows: on=%d off=%d", len(rOn.Rows), len(rOff.Rows))
	}

	onBytes := s1.BytesDecoded - s0.BytesDecoded
	offBytes := s2.BytesDecoded - s1.BytesDecoded
	if onBytes*2 >= offBytes {
		t.Fatalf("late materialization should decode far fewer bytes: on=%d off=%d", onBytes, offBytes)
	}
	if pruned := s1.SpansPruned - s0.SpansPruned; pruned == 0 {
		t.Fatalf("every span should have been pruned before payload decode (on=%dB off=%dB)", onBytes, offBytes)
	}
}
