//go:build vectorh_debug

package core

import (
	"strings"
	"testing"
)

func TestReleaseWithoutPinPanics(t *testing.T) {
	p := &Partition{cur: &metaGen{}}
	g := p.cur
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("release without a pin did not panic under vectorh_debug")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "released below zero") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	p.release(g, nil)
}

func TestCloseWithPinHeldPanics(t *testing.T) {
	p := &Partition{cur: &metaGen{}}
	p.mu.RLock()
	gen := p.pinLocked()
	p.mu.RUnlock()
	m := &mscan{part: p, gen: gen}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("debugCheckUnpinned did not panic with a held pin")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "still pinned") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	debugCheckUnpinned(m)
}

func TestBalancedPinReleaseClean(t *testing.T) {
	p := &Partition{cur: &metaGen{}}
	p.mu.RLock()
	g := p.pinLocked()
	p.mu.RUnlock()
	p.release(g, nil)
	if n := g.refs.Load(); n != 0 {
		t.Fatalf("refs after balanced pin/release = %d, want 0", n)
	}
}
