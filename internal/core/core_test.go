package core

import (
	"fmt"
	"strings"
	"testing"

	"vectorh/internal/colstore"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
	"vectorh/internal/vector"
)

func testEngine(t *testing.T, nodes int) *Engine {
	t.Helper()
	var names []string
	for i := 0; i < nodes; i++ {
		names = append(names, fmt.Sprintf("node%d", i+1))
	}
	e, err := New(Config{
		Nodes:          names,
		ThreadsPerNode: 2,
		BlockSize:      1 << 16,
		Format:         colstore.Format{BlockSize: 4096, BlocksPerChunk: 16, MaxRowsPerBlock: 256},
		MsgBytes:       4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var (
	ordersSchema = vector.Schema{
		{Name: "o_orderkey", Type: vector.TInt64},
		{Name: "o_date", Type: vector.TDate},
		{Name: "o_total", Type: vector.TFloat64},
	}
	itemsSchema = vector.Schema{
		{Name: "i_orderkey", Type: vector.TInt64},
		{Name: "i_suppkey", Type: vector.TInt64},
		{Name: "i_qty", Type: vector.TFloat64},
	}
	suppSchema = vector.Schema{
		{Name: "s_suppkey", Type: vector.TInt64},
		{Name: "s_name", Type: vector.TString},
	}
)

// setupTables creates orders (partitioned+clustered on o_orderkey), items
// (partitioned+clustered on i_orderkey, 3 items per order), and supplier
// (replicated, 10 rows).
func setupTables(t *testing.T, e *Engine, orders int) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.CreateTable(rewriter.TableInfo{
		Name: "orders", Schema: ordersSchema,
		PartitionKey: "o_orderkey", Partitions: 4, ClusteredOn: "o_orderkey",
	}))
	must(e.CreateTable(rewriter.TableInfo{
		Name: "items", Schema: itemsSchema,
		PartitionKey: "i_orderkey", Partitions: 4, ClusteredOn: "i_orderkey",
	}))
	must(e.CreateTable(rewriter.TableInfo{Name: "supplier", Schema: suppSchema}))

	ob := vector.NewBatchForSchema(ordersSchema, orders)
	ib := vector.NewBatchForSchema(itemsSchema, orders*3)
	for i := 0; i < orders; i++ {
		// Dates correlate with the order key (time-ordered fact table),
		// which is what makes MinMax skipping effective on date ranges.
		ob.AppendRow(int64(i), vector.MustDate("1995-01-01")+int32(i/11), float64(i))
		for j := 0; j < 3; j++ {
			ib.AppendRow(int64(i), int64((i+j)%10), float64(j+1))
		}
	}
	sb := vector.NewBatchForSchema(suppSchema, 10)
	for i := 0; i < 10; i++ {
		sb.AppendRow(int64(i), fmt.Sprintf("supp-%d", i))
	}
	must(e.Load("orders", []*vector.Batch{ob}))
	must(e.Load("items", []*vector.Batch{ib}))
	must(e.Load("supplier", []*vector.Batch{sb}))
}

func TestLoadAndScanCounts(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 1000)
	for _, tc := range []struct {
		table string
		want  int64
	}{{"orders", 1000}, {"items", 3000}, {"supplier", 10}} {
		if got, err := e.TableRows(tc.table); err != nil || got != tc.want {
			t.Fatalf("%s rows = %d err=%v", tc.table, got, err)
		}
		rows, err := e.Query(plan.Scan(tc.table))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(rows)) != tc.want {
			t.Fatalf("%s scan = %d rows", tc.table, len(rows))
		}
	}
}

func TestScansAreShortCircuit(t *testing.T) {
	// The §3 claim: with instrumented placement, all table IO is local.
	e := testEngine(t, 3)
	setupTables(t, e, 2000)
	e.FS().ResetStats()
	if _, err := e.Query(plan.Scan("orders")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(plan.Scan("items", "i_orderkey", "i_qty")); err != nil {
		t.Fatal(err)
	}
	s := e.FS().Stats()
	if s.RemoteBytesRead != 0 {
		t.Fatalf("remote reads on healthy cluster: %+v", s)
	}
	if s.LocalBytesRead == 0 {
		t.Fatal("no IO recorded")
	}
}

func TestColocatedJoinQuery(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 500)
	q := plan.Join(plan.InnerJoin,
		plan.Scan("items", "i_orderkey", "i_qty"),
		plan.Scan("orders", "o_orderkey", "o_total"),
		[]string{"i_orderkey"}, []string{"o_orderkey"})
	explain, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "MergeJoin[co-located]") {
		t.Fatalf("expected co-located merge join:\n%s", explain)
	}
	rows, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1500 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Join keys must match on every row.
	for _, r := range rows {
		if r[0].(int64) != r[2].(int64) {
			t.Fatalf("row %v", r)
		}
	}
}

func TestFigure5StyleQuery(t *testing.T) {
	// The §5 example: items ⋈ orders (co-located) ⋈ supplier (replicated),
	// group by supplier, top-k.
	e := testEngine(t, 3)
	setupTables(t, e, 600)
	q := plan.Top(
		plan.Aggregate(
			plan.Join(plan.InnerJoin,
				plan.Join(plan.InnerJoin,
					plan.Scan("items", "i_orderkey", "i_suppkey"),
					plan.Scan("orders", "o_orderkey", "o_date"),
					[]string{"i_orderkey"}, []string{"o_orderkey"}),
				plan.Scan("supplier"),
				[]string{"i_suppkey"}, []string{"s_suppkey"}),
			[]string{"s_suppkey", "s_name"},
			plan.AStar("l_count")),
		5, plan.Desc(plan.Col("l_count")), plan.Asc(plan.Col("s_suppkey")))
	res, err := e.QueryOpts(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// 600 orders × 3 items distributed over 10 suppliers = 180 per
	// supplier.
	if res.Rows[0][2].(int64) != 180 {
		t.Fatalf("top row = %v", res.Rows[0])
	}
	if !strings.Contains(res.Explain, "replicated-build") {
		t.Fatalf("expected replicated build:\n%s", res.Explain)
	}
}

func TestMinMaxSkippingInQueries(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 4000)
	lo, hi := vector.MustDate("1995-01-01"), vector.MustDate("1995-01-31")
	q := plan.Aggregate(
		plan.Filter(plan.Scan("orders", "o_orderkey", "o_date"),
			plan.Between(plan.Col("o_date"), plan.Date("1995-01-01"), plan.Date("1995-01-31"))).
			Skip("o_date", int64(lo), int64(hi)),
		nil, plan.AStar("n"))
	e.FS().ResetStats()
	rows, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	skipIO := e.FS().Stats().LocalBytesRead
	want := int64(0)
	for i := 0; i < 4000; i++ {
		if int32(i/11) <= 30 {
			want++
		}
	}
	if rows[0][0].(int64) != want {
		t.Fatalf("count = %v, want %d", rows[0][0], want)
	}
	// Same query without the skip hint reads more.
	q2 := plan.Aggregate(
		plan.Filter(plan.Scan("orders", "o_orderkey", "o_date"),
			plan.Between(plan.Col("o_date"), plan.Date("1995-01-01"), plan.Date("1995-01-31"))),
		nil, plan.AStar("n"))
	e.FS().ResetStats()
	if _, err := e.Query(q2); err != nil {
		t.Fatal(err)
	}
	full := e.FS().Stats().LocalBytesRead
	if skipIO >= full {
		t.Fatalf("skipping did not reduce IO: %d vs %d", skipIO, full)
	}
}

func TestTrickleInsertVisibleAndPersisted(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 100)
	nb := vector.NewBatchForSchema(ordersSchema, 5)
	for i := 0; i < 5; i++ {
		nb.AppendRow(int64(100000+i), vector.MustDate("1998-01-01"), float64(9999))
	}
	if err := e.InsertRows("orders", nb); err != nil {
		t.Fatal(err)
	}
	rows, err := e.Query(plan.Filter(plan.Scan("orders"), plan.GE(plan.Col("o_orderkey"), plan.Int(100000))))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("inserted rows visible = %d", len(rows))
	}
	if got, _ := e.TableRows("orders"); got != 105 {
		t.Fatalf("TableRows = %d", got)
	}
}

func TestTrickleDeleteAndUpdate(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 200)
	n, err := e.DeleteWhere("orders", plan.LT(plan.Col("o_orderkey"), plan.Int(50)))
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("deleted %d", n)
	}
	rows, err := e.Query(plan.Scan("orders", "o_orderkey"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 150 {
		t.Fatalf("rows after delete = %d", len(rows))
	}
	for _, r := range rows {
		if r[0].(int64) < 50 {
			t.Fatalf("deleted key %v still visible", r[0])
		}
	}
	// Update: double o_total of keys in [50, 60).
	n, err = e.UpdateWhere("orders",
		plan.And(plan.GE(plan.Col("o_orderkey"), plan.Int(50)), plan.LT(plan.Col("o_orderkey"), plan.Int(60))),
		[]string{"o_total"}, []plan.Expr{plan.Mul(plan.Col("o_total"), plan.Float(2))})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("updated %d", n)
	}
	rows, err = e.Query(plan.Filter(plan.Scan("orders"), plan.EQ(plan.Col("o_orderkey"), plan.Int(55))))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].(float64) != 110 {
		t.Fatalf("updated row = %v", rows)
	}
}

func TestUpdatePropagationTailInserts(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 100)
	nb := vector.NewBatchForSchema(ordersSchema, 64)
	for i := 0; i < 64; i++ {
		nb.AppendRow(int64(200000+i), vector.MustDate("1998-06-01"), float64(i))
	}
	if err := e.InsertRows("orders", nb); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if err := e.PropagatePartition("orders", p); err != nil {
			t.Fatal(err)
		}
	}
	// All PDTs empty; rows live in stable storage.
	var stable int64
	for _, part := range e.tables["orders"].Parts {
		st, _ := e.mgr.Part(part.Key)
		ins, del, mod := st.Write.Counts()
		ri, rd, rm := st.Read.Counts()
		if ins+del+mod+ri+rd+rm != 0 {
			t.Fatal("PDTs not empty after propagation")
		}
		stable += part.CurrentMeta().Rows
	}
	if stable != 164 {
		t.Fatalf("stable rows = %d", stable)
	}
	rows, err := e.Query(plan.Scan("orders", "o_orderkey"))
	if err != nil || len(rows) != 164 {
		t.Fatalf("rows = %d err=%v", len(rows), err)
	}
}

func TestUpdatePropagationRewrite(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 400)
	if _, err := e.DeleteWhere("orders", plan.LT(plan.Col("o_orderkey"), plan.Int(100))); err != nil {
		t.Fatal(err)
	}
	gensBefore := map[int]int{}
	for p, part := range e.tables["orders"].Parts {
		gensBefore[p] = part.CurrentMeta().Gen
	}
	for p := 0; p < 4; p++ {
		if err := e.PropagatePartition("orders", p); err != nil {
			t.Fatal(err)
		}
	}
	rewrote := false
	var stable int64
	for p, part := range e.tables["orders"].Parts {
		if part.CurrentMeta().Gen > gensBefore[p] {
			rewrote = true
		}
		stable += part.CurrentMeta().Rows
	}
	if !rewrote {
		t.Fatal("deletes should force a partition rewrite")
	}
	if stable != 300 {
		t.Fatalf("stable rows = %d", stable)
	}
	rows, err := e.Query(plan.Scan("orders", "o_orderkey"))
	if err != nil || len(rows) != 300 {
		t.Fatalf("rows = %d err=%v", len(rows), err)
	}
}

func TestLogShippingForReplicatedTables(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 50)
	nb := vector.NewBatchForSchema(suppSchema, 1)
	nb.AppendRow(int64(99), "new-supp")
	if err := e.InsertRows("supplier", nb); err != nil {
		t.Fatal(err)
	}
	if e.ShippedEntries == 0 {
		t.Fatal("replicated-table commit should ship log entries")
	}
	rows, err := e.Query(plan.Scan("supplier"))
	if err != nil || len(rows) != 11 {
		t.Fatalf("rows = %d err=%v", len(rows), err)
	}
}

func TestNodeFailureRecovery(t *testing.T) {
	e := testEngine(t, 4)
	setupTables(t, e, 1000)
	before, err := e.Query(plan.Aggregate(plan.Scan("items", "i_qty"), nil,
		plan.A("s", plan.Sum, plan.Col("i_qty"))))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.KillNode("node2"); err != nil {
		t.Fatal(err)
	}
	if len(e.Nodes()) != 3 {
		t.Fatalf("workers = %v", e.Nodes())
	}
	// Responsibilities moved to survivors.
	for _, table := range []string{"orders", "items"} {
		for _, part := range e.tables[table].Parts {
			if part.Responsible == "node2" {
				t.Fatalf("%s partition still assigned to dead node", table)
			}
		}
	}
	after, err := e.Query(plan.Aggregate(plan.Scan("items", "i_qty"), nil,
		plan.A("s", plan.Sum, plan.Col("i_qty"))))
	if err != nil {
		t.Fatal(err)
	}
	if before[0][0] != after[0][0] {
		t.Fatalf("sum changed after failure: %v -> %v", before[0][0], after[0][0])
	}
	// After re-replication, scans are local again.
	e.FS().ResetStats()
	if _, err := e.Query(plan.Scan("items", "i_orderkey")); err != nil {
		t.Fatal(err)
	}
	if s := e.FS().Stats(); s.RemoteBytesRead != 0 {
		t.Fatalf("scans not local after recovery: %+v", s)
	}
}

func TestQueryProfile(t *testing.T) {
	e := testEngine(t, 2)
	setupTables(t, e, 300)
	res, err := e.QueryOpts(plan.Aggregate(plan.Scan("items", "i_qty"), nil,
		plan.A("s", plan.Sum, plan.Col("i_qty"))), QueryOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile) == 0 {
		t.Fatal("no profile entries")
	}
	out := FormatProfile(res.Profile, len(res.Profile))
	if !strings.Contains(out, "MScan") {
		t.Fatalf("profile missing scans:\n%s", out)
	}
}

func TestCreateTableValidation(t *testing.T) {
	e := testEngine(t, 2)
	if err := e.CreateTable(rewriter.TableInfo{Name: "t", Schema: suppSchema, PartitionKey: "s_name"}); err == nil {
		t.Fatal("string partition key should fail")
	}
	if err := e.CreateTable(rewriter.TableInfo{Name: "t", Schema: suppSchema}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(rewriter.TableInfo{Name: "t", Schema: suppSchema}); err == nil {
		t.Fatal("duplicate table should fail")
	}
	if _, err := e.Table("ghost"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestQueryAfterInsertKeepsPerformance(t *testing.T) {
	// Miniature of the §8 GeoDiff experiment: query timings before and
	// after trickle updates stay in the same ballpark because merging is
	// positional. Here we just assert correctness of results post-update.
	e := testEngine(t, 3)
	setupTables(t, e, 500)
	q := plan.Aggregate(
		plan.Join(plan.InnerJoin,
			plan.Scan("items", "i_orderkey", "i_qty"),
			plan.Scan("orders", "o_orderkey"),
			[]string{"i_orderkey"}, []string{"o_orderkey"}),
		nil, plan.A("total", plan.Sum, plan.Col("i_qty")))
	before, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Insert one new order with items.
	ob := vector.NewBatchForSchema(ordersSchema, 1)
	ob.AppendRow(int64(7777777), vector.MustDate("1997-01-01"), 1.0)
	ib := vector.NewBatchForSchema(itemsSchema, 1)
	ib.AppendRow(int64(7777777), int64(3), 100.0)
	if err := e.InsertRows("orders", ob); err != nil {
		t.Fatal(err)
	}
	if err := e.InsertRows("items", ib); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after[0][0].(float64) != before[0][0].(float64)+100 {
		t.Fatalf("sum %v -> %v, want +100", before[0][0], after[0][0])
	}
}

// TestMalformedScanRequests checks the scan entry points return errors —
// not panics — on out-of-range partitions and bogus MinMax skip hints.
func TestMalformedScanRequests(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 100)

	if _, err := e.PartitionScan("orders", -1, []string{"o_orderkey"}, nil, 0); err == nil {
		t.Fatal("PartitionScan(-1) did not error")
	}
	if _, err := e.PartitionScan("orders", 99, []string{"o_orderkey"}, nil, 0); err == nil {
		t.Fatal("PartitionScan(99) did not error")
	}
	if _, err := e.PartitionScan("nosuch", 0, []string{"x"}, nil, 0); err == nil {
		t.Fatal("PartitionScan on unknown table did not error")
	}
	if _, err := e.ReplicatedScan("nosuch", []string{"x"}, nil, 0); err == nil {
		t.Fatal("ReplicatedScan on unknown table did not error")
	}
	if err := e.PropagatePartition("orders", 99); err == nil {
		t.Fatal("PropagatePartition(99) did not error")
	}

	// A predicate naming a column the partition does not store is a
	// malformed plan and must surface at Open, not scan everything.
	scan, err := e.PartitionScan("orders", 0, []string{"o_orderkey"},
		&rewriter.ScanPredSet{Preds: []plan.ColPred{plan.IntRange("nope", 0, 10)}, SkipOnly: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Open with bogus skip column: err=%v, want column-not-found", err)
	}
	// A skip-only int hint on a string column has no MinMax index of that
	// shape to use — the scan must still run, just without skipping.
	scan, err = e.PartitionScan("supplier", 0, []string{"s_suppkey", "s_name"},
		&rewriter.ScanPredSet{Preds: []plan.ColPred{plan.IntRange("s_name", 0, 10)}, SkipOnly: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(); err != nil {
		t.Fatalf("Open with string-column skip hint: %v", err)
	}
	n := 0
	for {
		b, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		n += b.Len()
	}
	if n != 10 {
		t.Fatalf("scanned %d rows, want 10", n)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and a closed scan reports end-of-scan.
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := scan.Next(); err != nil || b != nil {
		t.Fatalf("Next after Close: batch=%v err=%v", b, err)
	}
}

// TestUpdateWhereRejectsKindMismatch checks that a SET expression whose
// physical kind does not match the column is rejected at bind time instead
// of corrupting the PDT.
func TestUpdateWhereRejectsKindMismatch(t *testing.T) {
	e := testEngine(t, 3)
	setupTables(t, e, 100)
	_, err := e.UpdateWhere("orders",
		plan.EQ(plan.Col("o_orderkey"), plan.Int(1)),
		[]string{"o_total"}, []plan.Expr{plan.Str("oops")})
	if err == nil || !strings.Contains(err.Error(), "does not match column kind") {
		t.Fatalf("kind mismatch not rejected: %v", err)
	}
	_, err = e.UpdateWhere("orders",
		plan.Col("o_total"), // not a boolean predicate
		[]string{"o_total"}, []plan.Expr{plan.Float(1)})
	if err == nil || !strings.Contains(err.Error(), "not boolean") {
		t.Fatalf("non-boolean predicate not rejected: %v", err)
	}
}
