package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vectorh/internal/exec"
	"vectorh/internal/mpp"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
)

// QueryOptions tune one query execution (rule ablation, profiling).
type QueryOptions struct {
	// Rule flags; nil means all rules enabled.
	LocalJoin      *bool
	ReplicateBuild *bool
	PartialAgg     *bool
	// Profile enables the per-operator profile of the Appendix.
	Profile bool
}

// QueryResult carries rows plus execution metadata.
type QueryResult struct {
	Rows    [][]any
	Explain string
	Elapsed time.Duration
	Profile []ProfileEntry
}

// ProfileEntry is one operator's measurements (time and cum tuples), the
// shape of the Appendix profile.
type ProfileEntry struct {
	Operator string
	Nanos    int64
	Tuples   int64
}

// Query plans, parallelizes and executes a logical plan, returning all
// result rows (the session master is the single consumer).
func (e *Engine) Query(q plan.Node) ([][]any, error) {
	res, err := e.QueryOpts(q, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryOpts runs a query with explicit options.
func (e *Engine) QueryOpts(q plan.Node, qo QueryOptions) (*QueryResult, error) {
	e.mu.Lock()
	nodes := len(e.active)
	net := e.net
	e.mu.Unlock()

	opts := rewriter.DefaultOptions(nodes, e.cfg.ThreadsPerNode)
	if qo.LocalJoin != nil {
		opts.LocalJoin = *qo.LocalJoin
	}
	if qo.ReplicateBuild != nil {
		opts.ReplicateBuild = *qo.ReplicateBuild
	}
	if qo.PartialAgg != nil {
		opts.PartialAgg = *qo.PartialAgg
	}
	phys, err := rewriter.Rewrite(q, e, opts)
	if err != nil {
		return nil, err
	}
	env := &rewriter.Env{
		Net:      net,
		Provider: e,
		Nodes:    nodes,
		Threads:  e.cfg.ThreadsPerNode,
		Mode:     e.cfg.Mode,
		MsgBytes: e.cfg.MsgBytes,
	}
	if qo.Profile {
		env.Profile = make(map[string]*exec.Profiled)
	}
	streams, err := rewriter.Instantiate(phys, env)
	if err != nil {
		return nil, fmt.Errorf("core: instantiate: %w\n%s", err, rewriter.Explain(phys))
	}
	var root exec.Operator
	count := 0
	for n := range streams {
		for _, s := range streams[n] {
			root = s
			count++
		}
	}
	if count != 1 {
		return nil, fmt.Errorf("core: plan root has %d streams\n%s", count, rewriter.Explain(phys))
	}
	start := time.Now()
	rows, err := exec.Collect(root)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Rows: rows, Explain: rewriter.Explain(phys), Elapsed: time.Since(start)}
	if qo.Profile {
		for name, p := range env.Profile {
			res.Profile = append(res.Profile, ProfileEntry{Operator: name, Nanos: p.NanosSelf, Tuples: p.TuplesOut})
		}
		sort.Slice(res.Profile, func(i, j int) bool { return res.Profile[i].Nanos > res.Profile[j].Nanos })
	}
	return res, nil
}

// Explain returns the distributed physical plan without executing it.
func (e *Engine) Explain(q plan.Node) (string, error) {
	e.mu.Lock()
	nodes := len(e.active)
	e.mu.Unlock()
	phys, err := rewriter.Rewrite(q, e, rewriter.DefaultOptions(nodes, e.cfg.ThreadsPerNode))
	if err != nil {
		return "", err
	}
	return rewriter.Explain(phys), nil
}

// FormatProfile renders a profile like the Appendix figure: per operator,
// self time and produced tuples, heaviest first.
func FormatProfile(entries []ProfileEntry, topN int) string {
	var sb strings.Builder
	for i, p := range entries {
		if i >= topN {
			break
		}
		fmt.Fprintf(&sb, "%-60s time=%10.3fms  out=%d tuples\n",
			p.Operator, float64(p.Nanos)/1e6, p.Tuples)
	}
	return sb.String()
}

// ExchangeMode returns the engine's DXchg fan-out strategy (for reports).
func (e *Engine) ExchangeMode() mpp.Mode { return e.cfg.Mode }
