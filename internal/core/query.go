package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"vectorh/internal/exec"
	"vectorh/internal/mpp"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
)

// QueryOptions tune one query execution (rule ablation, profiling).
type QueryOptions struct {
	// Rule flags; nil means all rules enabled.
	LocalJoin      *bool
	ReplicateBuild *bool
	PartialAgg     *bool
	// ScanPushdown (nil = on) controls predicate pushdown into scans: off,
	// pushable conjuncts degrade to skip-only hints and the full Select
	// stays above the scan — the pre-pushdown pipeline, used by the
	// selectivity experiment and the row-identity parity gates.
	ScanPushdown *bool
	// Profile enables the per-operator profile of the Appendix.
	Profile bool
}

// QueryResult carries rows plus execution metadata.
type QueryResult struct {
	Rows    [][]any
	Explain string
	Elapsed time.Duration
	Profile []ProfileEntry
}

// ProfileEntry is one operator's measurements (time and cum tuples), the
// shape of the Appendix profile.
type ProfileEntry struct {
	Operator string
	Nanos    int64
	Tuples   int64
}

// Query plans, parallelizes and executes a logical plan, returning all
// result rows (the session master is the single consumer).
func (e *Engine) Query(q plan.Node) ([][]any, error) {
	res, err := e.QueryOpts(q, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryContext is Query under a context: a deadline or cancellation stops
// the scans, local exchange producers and DXchg senders of the query at
// batch granularity, releasing their goroutines and storage snapshots.
func (e *Engine) QueryContext(ctx context.Context, q plan.Node) ([][]any, error) {
	res, err := e.QueryOptsContext(ctx, q, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryOpts runs a query with explicit options.
func (e *Engine) QueryOpts(q plan.Node, qo QueryOptions) (*QueryResult, error) {
	//lint:ctx compatibility shim for context-free callers; cancellable path is QueryOptsContext
	return e.QueryOptsContext(context.Background(), q, qo)
}

// QueryOptsContext runs a query with explicit options under a context.
func (e *Engine) QueryOptsContext(ctx context.Context, q plan.Node, qo QueryOptions) (*QueryResult, error) {
	res := &QueryResult{}
	err := e.queryStream(ctx, q, qo, res, func(rows [][]any) error {
		res.Rows = append(res.Rows, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryStreamContext executes a query and delivers result rows to yield in
// batches as the root stream produces them (the serving layer's streamed
// `rows` frames). A non-nil error from yield cancels the execution. It
// returns the executed plan's metadata with Rows left nil.
func (e *Engine) QueryStreamContext(ctx context.Context, q plan.Node, yield func(rows [][]any) error) (*QueryResult, error) {
	res := &QueryResult{}
	if err := e.queryStream(ctx, q, QueryOptions{}, res, yield); err != nil {
		return nil, err
	}
	return res, nil
}

// queryStream is the shared execution path: rewrite, instantiate with the
// query context threaded into scans and exchanges, then drain the single
// root stream batch by batch.
func (e *Engine) queryStream(ctx context.Context, q plan.Node, qo QueryOptions, res *QueryResult, yield func(rows [][]any) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Every execution gets a private cancelable context derived from the
	// caller's: it is cancelled when this function returns, so exchange
	// watchdogs and abandoned producer goroutines never outlive the query.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	e.mu.RLock()
	nodes := len(e.active)
	net := e.net
	e.mu.RUnlock()

	opts := rewriter.DefaultOptions(nodes, e.cfg.ThreadsPerNode)
	if qo.LocalJoin != nil {
		opts.LocalJoin = *qo.LocalJoin
	}
	if qo.ReplicateBuild != nil {
		opts.ReplicateBuild = *qo.ReplicateBuild
	}
	if qo.PartialAgg != nil {
		opts.PartialAgg = *qo.PartialAgg
	}
	if qo.ScanPushdown != nil {
		opts.PushFilterIntoScan = *qo.ScanPushdown
	}
	phys, err := rewriter.Rewrite(q, e, opts)
	if err != nil {
		return err
	}
	env := &rewriter.Env{
		Ctx:      ctx,
		Net:      net,
		Provider: ctxScans{e: e, ctx: ctx},
		Nodes:    nodes,
		Threads:  e.cfg.ThreadsPerNode,
		Mode:     e.cfg.Mode,
		MsgBytes: e.cfg.MsgBytes,
	}
	if qo.Profile {
		env.Profile = make(map[string]*exec.Profiled)
	}
	streams, err := rewriter.Instantiate(phys, env)
	if err != nil {
		return fmt.Errorf("core: instantiate: %w\n%s", err, rewriter.Explain(phys))
	}
	var root exec.Operator
	count := 0
	for n := range streams {
		for _, s := range streams[n] {
			root = s
			count++
		}
	}
	if count != 1 {
		return fmt.Errorf("core: plan root has %d streams\n%s", count, rewriter.Explain(phys))
	}
	start := time.Now()
	if err := root.Open(); err != nil {
		root.Close()
		return err
	}
	for {
		if cerr := ctx.Err(); cerr != nil {
			root.Close()
			return fmt.Errorf("core: query canceled: %w", context.Cause(ctx))
		}
		b, err := root.Next()
		if err != nil {
			root.Close()
			return err
		}
		if b == nil {
			break
		}
		rows := make([][]any, b.Len())
		for i := 0; i < b.Len(); i++ {
			rows[i] = b.Row(i)
		}
		if err := yield(rows); err != nil {
			root.Close()
			return err
		}
	}
	// A cancellation that lands while Next is blocked can surface as a
	// clean end-of-stream (the exchange teardown closes consumer channels);
	// re-check the context before declaring success, or a truncated result
	// would be reported as complete.
	if cerr := ctx.Err(); cerr != nil {
		root.Close()
		return fmt.Errorf("core: query canceled: %w", context.Cause(ctx))
	}
	if err := root.Close(); err != nil {
		return err
	}
	res.Explain = rewriter.Explain(phys)
	res.Elapsed = time.Since(start)
	if qo.Profile {
		for name, p := range env.Profile {
			res.Profile = append(res.Profile, ProfileEntry{Operator: name, Nanos: p.NanosSelf, Tuples: p.TuplesOut})
		}
		sort.Slice(res.Profile, func(i, j int) bool { return res.Profile[i].Nanos > res.Profile[j].Nanos })
	}
	return nil
}

// Explain returns the distributed physical plan without executing it.
func (e *Engine) Explain(q plan.Node) (string, error) {
	e.mu.RLock()
	nodes := len(e.active)
	e.mu.RUnlock()
	phys, est, err := rewriter.RewriteEst(q, e, rewriter.DefaultOptions(nodes, e.cfg.ThreadsPerNode))
	if err != nil {
		return "", err
	}
	return rewriter.ExplainEst(phys, est), nil
}

// FormatProfile renders a profile like the Appendix figure: per operator,
// self time and produced tuples, heaviest first.
func FormatProfile(entries []ProfileEntry, topN int) string {
	var sb strings.Builder
	for i, p := range entries {
		if i >= topN {
			break
		}
		fmt.Fprintf(&sb, "%-60s time=%10.3fms  out=%d tuples\n",
			p.Operator, float64(p.Nanos)/1e6, p.Tuples)
	}
	return sb.String()
}

// ExchangeMode returns the engine's DXchg fan-out strategy (for reports).
func (e *Engine) ExchangeMode() mpp.Mode { return e.cfg.Mode }
