package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"vectorh/internal/exec"
	"vectorh/internal/mpp"
	"vectorh/internal/obs"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
)

// QueryOptions tune one query execution (rule ablation, profiling).
type QueryOptions struct {
	// Rule flags; nil means all rules enabled.
	LocalJoin      *bool
	ReplicateBuild *bool
	PartialAgg     *bool
	// ScanPushdown (nil = on) controls predicate pushdown into scans: off,
	// pushable conjuncts degrade to skip-only hints and the full Select
	// stays above the scan — the pre-pushdown pipeline, used by the
	// selectivity experiment and the row-identity parity gates.
	ScanPushdown *bool
	// CompressedExec (nil = on) controls execution on compressed data: off,
	// scans materialize every string block to values and predicates run in
	// value space — the baseline the compressed-execution parity gate and
	// the compression experiment compare against. On, PDICT blocks surface
	// dictionary-code vectors, pushed string conjuncts evaluate per
	// dictionary entry, and frame bounds verdict integer conjuncts before
	// any unpack.
	CompressedExec *bool
	// Profile enables the per-operator profile of the Appendix and the
	// EXPLAIN ANALYZE rendering (Analyzed/Operators on the result). The off
	// path inserts no wrappers at all, so it costs nothing per batch.
	Profile bool
	// Trace, when non-nil, receives the rewrite and execute phase spans and
	// (under Profile) the aggregated per-operator profiles.
	Trace *obs.Trace
}

// QueryResult carries rows plus execution metadata.
type QueryResult struct {
	Rows    [][]any
	Explain string
	Elapsed time.Duration
	Profile []ProfileEntry

	// EXPLAIN ANALYZE output, filled when QueryOptions.Profile is set: the
	// plan tree annotated with estimated vs actual rows, batch counts and
	// per-operator wall time (Analyzed), the per-node aggregates behind it
	// (Operators, heaviest first), and the query's exact scan IO (Scan),
	// summed from the retained counters of its scan operators.
	Analyzed  string
	Operators []obs.OpProfile
	Scan      ScanIO
}

// ProfileEntry is one operator's measurements (time and cum tuples), the
// shape of the Appendix profile.
type ProfileEntry struct {
	Operator string
	Nanos    int64
	Tuples   int64
}

// Query plans, parallelizes and executes a logical plan, returning all
// result rows (the session master is the single consumer).
func (e *Engine) Query(q plan.Node) ([][]any, error) {
	res, err := e.QueryOpts(q, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryContext is Query under a context: a deadline or cancellation stops
// the scans, local exchange producers and DXchg senders of the query at
// batch granularity, releasing their goroutines and storage snapshots.
func (e *Engine) QueryContext(ctx context.Context, q plan.Node) ([][]any, error) {
	res, err := e.QueryOptsContext(ctx, q, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// QueryOpts runs a query with explicit options.
func (e *Engine) QueryOpts(q plan.Node, qo QueryOptions) (*QueryResult, error) {
	//lint:ctx compatibility shim for context-free callers; cancellable path is QueryOptsContext
	return e.QueryOptsContext(context.Background(), q, qo)
}

// QueryOptsContext runs a query with explicit options under a context.
func (e *Engine) QueryOptsContext(ctx context.Context, q plan.Node, qo QueryOptions) (*QueryResult, error) {
	res := &QueryResult{}
	err := e.queryStream(ctx, q, qo, res, func(rows [][]any) error {
		res.Rows = append(res.Rows, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// QueryStreamContext executes a query and delivers result rows to yield in
// batches as the root stream produces them (the serving layer's streamed
// `rows` frames). A non-nil error from yield cancels the execution. It
// returns the executed plan's metadata with Rows left nil.
func (e *Engine) QueryStreamContext(ctx context.Context, q plan.Node, yield func(rows [][]any) error) (*QueryResult, error) {
	return e.QueryStreamOpts(ctx, q, QueryOptions{}, yield)
}

// QueryStreamOpts is QueryStreamContext with explicit options — the serving
// layer's profiled path (slow-query logging) streams rows while the
// per-operator wrappers accumulate.
func (e *Engine) QueryStreamOpts(ctx context.Context, q plan.Node, qo QueryOptions, yield func(rows [][]any) error) (*QueryResult, error) {
	res := &QueryResult{}
	if err := e.queryStream(ctx, q, qo, res, yield); err != nil {
		return nil, err
	}
	return res, nil
}

// queryStream is the shared execution path: rewrite, instantiate with the
// query context threaded into scans and exchanges, then drain the single
// root stream batch by batch.
func (e *Engine) queryStream(ctx context.Context, q plan.Node, qo QueryOptions, res *QueryResult, yield func(rows [][]any) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Every execution gets a private cancelable context derived from the
	// caller's: it is cancelled when this function returns, so exchange
	// watchdogs and abandoned producer goroutines never outlive the query.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	e.mu.RLock()
	nodes := len(e.active)
	net := e.net
	e.mu.RUnlock()

	opts := rewriter.DefaultOptions(nodes, e.cfg.ThreadsPerNode)
	if qo.LocalJoin != nil {
		opts.LocalJoin = *qo.LocalJoin
	}
	if qo.ReplicateBuild != nil {
		opts.ReplicateBuild = *qo.ReplicateBuild
	}
	if qo.PartialAgg != nil {
		opts.PartialAgg = *qo.PartialAgg
	}
	if qo.ScanPushdown != nil {
		opts.PushFilterIntoScan = *qo.ScanPushdown
	}
	codeExec := true
	if qo.CompressedExec != nil {
		codeExec = *qo.CompressedExec
	}
	opts.ExecOnCompressed = codeExec
	// Profiled runs use the estimating rewrite so EXPLAIN ANALYZE can put
	// the cost model's ~N next to the measured actuals; the plain path keeps
	// the cheaper non-estimating rewrite.
	rewriteDone := qo.Trace.StartPhase("rewrite")
	var phys rewriter.Phys
	var est map[rewriter.Phys]int64
	var err error
	if qo.Profile {
		phys, est, err = rewriter.RewriteEst(q, e, opts)
	} else {
		phys, err = rewriter.Rewrite(q, e, opts)
	}
	rewriteDone()
	if err != nil {
		return err
	}
	env := &rewriter.Env{
		Ctx:      ctx,
		Net:      net,
		Provider: ctxScans{e: e, ctx: ctx, codeExec: codeExec},
		Nodes:    nodes,
		Threads:  e.cfg.ThreadsPerNode,
		Mode:     e.cfg.Mode,
		MsgBytes: e.cfg.MsgBytes,
	}
	if qo.Profile {
		env.Profile = &rewriter.Profile{}
	}
	streams, err := rewriter.Instantiate(phys, env)
	if err != nil {
		return fmt.Errorf("core: instantiate: %w\n%s", err, rewriter.Explain(phys))
	}
	var root exec.Operator
	count := 0
	for n := range streams {
		for _, s := range streams[n] {
			root = s
			count++
		}
	}
	if count != 1 {
		return fmt.Errorf("core: plan root has %d streams\n%s", count, rewriter.Explain(phys))
	}
	start := time.Now()
	if err := root.Open(); err != nil {
		root.Close()
		return err
	}
	for {
		if cerr := ctx.Err(); cerr != nil {
			root.Close()
			return fmt.Errorf("core: query canceled: %w", context.Cause(ctx))
		}
		b, err := root.Next()
		if err != nil {
			root.Close()
			return err
		}
		if b == nil {
			break
		}
		rows := make([][]any, b.Len())
		for i := 0; i < b.Len(); i++ {
			rows[i] = b.Row(i)
		}
		if err := yield(rows); err != nil {
			root.Close()
			return err
		}
	}
	// A cancellation that lands while Next is blocked can surface as a
	// clean end-of-stream (the exchange teardown closes consumer channels);
	// re-check the context before declaring success, or a truncated result
	// would be reported as complete.
	if cerr := ctx.Err(); cerr != nil {
		root.Close()
		return fmt.Errorf("core: query canceled: %w", context.Cause(ctx))
	}
	if err := root.Close(); err != nil {
		return err
	}
	res.Explain = rewriter.Explain(phys)
	res.Elapsed = time.Since(start)
	qo.Trace.AddPhase("execute", res.Elapsed)
	if qo.Profile {
		for _, sp := range env.Profile.Streams {
			res.Profile = append(res.Profile, ProfileEntry{
				Operator: sp.Prof.Name,
				Nanos:    atomic.LoadInt64(&sp.Prof.NanosSelf),
				Tuples:   atomic.LoadInt64(&sp.Prof.TuplesOut),
			})
		}
		sort.Slice(res.Profile, func(i, j int) bool { return res.Profile[i].Nanos > res.Profile[j].Nanos })
		res.Analyzed, res.Operators, res.Scan = buildAnalyzed(phys, est, env.Profile)
		for _, op := range res.Operators {
			qo.Trace.AddOp(op)
		}
	}
	return nil
}

// scanIOReporter is implemented by scan operators that retain their IO
// totals past Close for per-operator attribution.
type scanIOReporter interface{ ScanIOStats() ScanIO }

// buildAnalyzed aggregates the profiled streams of each plan node and
// renders the EXPLAIN ANALYZE tree: the cost model's ~N estimate next to the
// measured rows, batches, peak batch size and cumulative wall time, plus
// blocks/bytes/pruned-spans for scans. It also returns the flat per-node
// aggregates (heaviest first) and the query's total scan IO.
func buildAnalyzed(phys rewriter.Phys, est map[rewriter.Phys]int64, prof *rewriter.Profile) (string, []obs.OpProfile, ScanIO) {
	type agg struct {
		op    obs.OpProfile
		hasIO bool
	}
	byPhys := make(map[rewriter.Phys]*agg, len(prof.Streams))
	order := make([]rewriter.Phys, 0, len(prof.Streams))
	var total ScanIO
	for _, sp := range prof.Streams {
		a := byPhys[sp.Phys]
		if a == nil {
			a = &agg{}
			a.op.Label = rewriter.Label(sp.Phys)
			byPhys[sp.Phys] = a
			order = append(order, sp.Phys)
		}
		a.op.Nanos += time.Duration(atomic.LoadInt64(&sp.Prof.NanosSelf))
		a.op.Rows += atomic.LoadInt64(&sp.Prof.TuplesOut)
		a.op.Batches += atomic.LoadInt64(&sp.Prof.Batches)
		if pb := atomic.LoadInt64(&sp.Prof.PeakBatch); pb > a.op.PeakBatch {
			a.op.PeakBatch = pb
		}
		a.op.Streams++
		if r, ok := sp.Prof.Child.(scanIOReporter); ok {
			io := r.ScanIOStats()
			a.op.BlocksRead += io.BlocksRead
			a.op.BytesDecoded += io.BytesDecoded
			a.op.SpansPruned += io.SpansPruned
			a.op.CacheHits += io.CacheHits
			a.op.BytesSkipped += io.BytesSkipped
			a.op.BytesMaterialized += io.BytesMaterialized
			a.hasIO = true
			total.BlocksRead += io.BlocksRead
			total.BytesDecoded += io.BytesDecoded
			total.CacheHits += io.CacheHits
			total.SpansPruned += io.SpansPruned
			total.BytesSkipped += io.BytesSkipped
			total.BytesMaterialized += io.BytesMaterialized
		}
	}
	analyzed := rewriter.ExplainFunc(phys, func(p rewriter.Phys) string {
		a := byPhys[p]
		rows, hasEst := est[p]
		if a == nil && !hasEst {
			return ""
		}
		var sb strings.Builder
		if hasEst {
			fmt.Fprintf(&sb, " ~%d rows", rows)
		}
		if a != nil {
			fmt.Fprintf(&sb, " (actual rows=%d batches=%d peak=%d time=%.3fms streams=%d",
				a.op.Rows, a.op.Batches, a.op.PeakBatch, float64(a.op.Nanos)/1e6, a.op.Streams)
			if a.hasIO {
				fmt.Fprintf(&sb, " blocks=%d bytes=%d pruned=%d cached=%d skipped=%d materialized=%d",
					a.op.BlocksRead, a.op.BytesDecoded, a.op.SpansPruned, a.op.CacheHits,
					a.op.BytesSkipped, a.op.BytesMaterialized)
			}
			sb.WriteByte(')')
		}
		return sb.String()
	})
	ops := make([]obs.OpProfile, 0, len(order))
	for _, p := range order {
		ops = append(ops, byPhys[p].op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Nanos > ops[j].Nanos })
	return analyzed, ops, total
}

// Explain returns the distributed physical plan without executing it.
func (e *Engine) Explain(q plan.Node) (string, error) {
	e.mu.RLock()
	nodes := len(e.active)
	e.mu.RUnlock()
	phys, est, err := rewriter.RewriteEst(q, e, rewriter.DefaultOptions(nodes, e.cfg.ThreadsPerNode))
	if err != nil {
		return "", err
	}
	return rewriter.ExplainEst(phys, est), nil
}

// FormatProfile renders a profile like the Appendix figure: per operator,
// self time and produced tuples, heaviest first.
func FormatProfile(entries []ProfileEntry, topN int) string {
	var sb strings.Builder
	for i, p := range entries {
		if i >= topN {
			break
		}
		fmt.Fprintf(&sb, "%-60s time=%10.3fms  out=%d tuples\n",
			p.Operator, float64(p.Nanos)/1e6, p.Tuples)
	}
	return sb.String()
}

// ExchangeMode returns the engine's DXchg fan-out strategy (for reports).
func (e *Engine) ExchangeMode() mpp.Mode { return e.cfg.Mode }
