//go:build !vectorh_debug

package core

// Release-build no-ops; build with -tags vectorh_debug to enable the
// scan-pin refcount assertions.

func debugCheckRefs(n int64) {}

func debugCheckUnpinned(m *mscan) {}
