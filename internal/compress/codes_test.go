package compress

import (
	"math"
	"math/rand"
	"testing"
)

func TestPDictOpenCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	cases := [][]string{
		{},
		{"x"},
		{"a", "b", "a", "c", "a", "b"},
	}
	// Repetitive block with rare exceptions (sentinel-coded values).
	big := make([]string, 3000)
	for i := range big {
		if rng.Intn(97) == 0 {
			big[i] = string(rune('A'+rng.Intn(26))) + "-rare"
		} else {
			big[i] = pool[rng.Intn(len(pool))]
		}
	}
	cases = append(cases, big)

	for ci, vals := range cases {
		enc := PDictEncode(vals)
		b, err := PDictOpen(enc)
		if err != nil {
			t.Fatalf("case %d: open: %v", ci, err)
		}
		if b.Rows() != len(vals) {
			t.Fatalf("case %d: rows %d != %d", ci, b.Rows(), len(vals))
		}
		codes, err := b.Codes()
		if err != nil {
			t.Fatalf("case %d: codes: %v", ci, err)
		}
		want, err := PDictDecode(enc, nil)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		seen := map[string]uint32{}
		for i := range vals {
			got := b.Dict.Values[codes[i]]
			if got != want[i] {
				t.Fatalf("case %d row %d: code %d -> %q, want %q", ci, i, codes[i], got, want[i])
			}
			// Canonical codes: one code per distinct string.
			if c, ok := seen[got]; ok && c != codes[i] {
				t.Fatalf("case %d: %q has codes %d and %d", ci, got, c, codes[i])
			}
			seen[got] = codes[i]
		}
		mat, err := b.Materialize(nil)
		if err != nil {
			t.Fatalf("case %d: materialize: %v", ci, err)
		}
		for i := range want {
			if mat[i] != want[i] {
				t.Fatalf("case %d: materialize row %d: %q != %q", ci, i, mat[i], want[i])
			}
		}
		if len(vals) > 0 && b.DictBytes()+b.CodeBytes() > len(enc) {
			t.Fatalf("case %d: section bytes %d+%d exceed block %d", ci, b.DictBytes(), b.CodeBytes(), len(enc))
		}
	}
}

func TestStrDictLookupAndHashes(t *testing.T) {
	d := &StrDict{Values: []string{"a", "b", "c"}}
	if d.Lookup("b") != 1 || d.Lookup("z") != -1 {
		t.Fatalf("lookup: got %d, %d", d.Lookup("b"), d.Lookup("z"))
	}
	fn := func(s string) uint64 { return uint64(len(s)) + 7 }
	hs := d.CodeHashes(fn)
	if len(hs) != 3 || hs[0] != 8 {
		t.Fatalf("hashes: %v", hs)
	}
	if &hs[0] != &d.CodeHashes(fn)[0] {
		t.Fatal("hashes not memoized")
	}
}

func TestPFORBounds(t *testing.T) {
	cases := [][]int64{
		{1, 2, 3, 4, 5},
		{100, 100, 100},
		{-5, 0, 5, math.MaxInt64, math.MinInt64}, // wide outliers become exceptions
		{0},
	}
	rng := rand.New(rand.NewSource(11))
	dense := make([]int64, 4000)
	for i := range dense {
		dense[i] = int64(rng.Intn(1000)) + 50
		if rng.Intn(211) == 0 {
			dense[i] = int64(rng.Intn(2000000)) - 1000000
		}
	}
	cases = append(cases, dense)

	for ci, vals := range cases {
		enc := PFOREncode(vals)
		lo, hi, ok := PFORBounds(enc)
		if !ok {
			continue // conservative bail-out is always allowed
		}
		for i, v := range vals {
			if v < lo || v > hi {
				t.Fatalf("case %d: value %d at %d outside bounds [%d,%d]", ci, v, i, lo, hi)
			}
		}
	}
	if _, _, ok := PFORBounds(PFORDeltaEncode([]int64{1, 2, 3})); ok {
		t.Fatal("bounds must not apply to delta blocks")
	}
	if _, _, ok := PFORBounds(PFOREncode(nil)); ok {
		t.Fatal("bounds on empty block")
	}
}

func TestPFORDecodeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.Intn(500))
		if rng.Intn(37) == 0 {
			vals[i] = rng.Int63() - rng.Int63()
		}
	}
	enc := PFOREncode(vals)
	var s Scratch
	for _, r := range [][2]int{{0, 5000}, {0, 1}, {4999, 5000}, {1024, 2048}, {17, 4990}, {2000, 2000}} {
		got, err := PFORDecodeRange(enc, r[0], r[1], nil, &s)
		if err != nil {
			t.Fatalf("range %v: %v", r, err)
		}
		if len(got) != r[1]-r[0] {
			t.Fatalf("range %v: got %d values", r, len(got))
		}
		for i, v := range got {
			if v != vals[r[0]+i] {
				t.Fatalf("range %v row %d: %d != %d", r, i, v, vals[r[0]+i])
			}
		}
	}
	if _, err := PFORDecodeRange(enc, 10, 5001, nil, nil); err == nil {
		t.Fatal("out-of-range decode must fail")
	}
}

func TestScratchReuseAcrossSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ints := make([]int64, 2048)
	for i := range ints {
		ints[i] = int64(rng.Intn(100000))
	}
	strs := make([]string, 2048)
	for i := range strs {
		strs[i] = []string{"l", "m", "n", "o"}[rng.Intn(4)]
	}
	pf, pd, dict := PFOREncode(ints), PFORDeltaEncode(ints), PDictEncode(strs)
	var s Scratch
	for round := 0; round < 3; round++ {
		gi, err := PFORDecodeScratch(pf, nil, &s)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := PFORDeltaDecodeScratch(pd, nil, &s)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := DecodeStringsScratch(dict, nil, &s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ints {
			if gi[i] != ints[i] || gd[i] != ints[i] || gs[i] != strs[i] {
				t.Fatalf("round %d row %d mismatch", round, i)
			}
		}
	}
}
