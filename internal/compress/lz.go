package compress

import "encoding/binary"

// LZCompress is a small byte-oriented LZ77 compressor in the spirit of
// Snappy/LZ4: greedy hash-table matching on 4-byte windows, varint-coded
// copy offsets, no entropy stage. It stands in for the general-purpose
// compressors the paper discusses (Snappy in ORC/Parquet, LZ4 in VectorH).
//
// Format: uvarint(decompressed length) followed by tokens. A token control
// byte c encodes a literal run of (c>>1)+1 bytes when c&1 == 0, or a match
// of length (c>>1)+minMatch with a following uvarint back-offset when
// c&1 == 1.
func LZCompress(src []byte) []byte {
	const (
		minMatch   = 4
		maxLiteral = 128
		maxMatch   = 127 + minMatch
		hashBits   = 14
	)
	out := binary.AppendUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	var table [1 << hashBits]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(p int) uint32 {
		v := uint32(src[p]) | uint32(src[p+1])<<8 | uint32(src[p+2])<<16 | uint32(src[p+3])<<24
		return (v * 2654435761) >> (32 - hashBits)
	}
	emitLiterals := func(lo, hi int) {
		for lo < hi {
			run := hi - lo
			if run > maxLiteral {
				run = maxLiteral
			}
			out = append(out, byte((run-1)<<1))
			out = append(out, src[lo:lo+run]...)
			lo += run
		}
	}
	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash(i)
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || int(cand)+minMatch > len(src) ||
			src[cand] != src[i] || src[cand+1] != src[i+1] ||
			src[cand+2] != src[i+2] || src[cand+3] != src[i+3] {
			i++
			continue
		}
		// Extend the match.
		length := minMatch
		for i+length < len(src) && length < maxMatch && src[int(cand)+length] == src[i+length] {
			length++
		}
		emitLiterals(litStart, i)
		out = append(out, byte((length-minMatch)<<1|1))
		out = binary.AppendUvarint(out, uint64(i-int(cand)))
		i += length
		litStart = i
	}
	emitLiterals(litStart, len(src))
	return out
}

// LZDecompress inverts LZCompress.
func LZDecompress(src []byte) ([]byte, error) {
	const minMatch = 4
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	src = src[sz:]
	// Bound the declared length before trusting it with an allocation: a
	// match token (>=2 stream bytes) expands to at most 131 output bytes
	// and a literal run to at most its own length, so any valid stream
	// satisfies this. A corrupted length either fails here or at the exact
	// check after decoding.
	if n > uint64(len(src))*131 {
		return nil, ErrCorrupt
	}
	out := make([]byte, 0, n)
	for len(src) > 0 {
		c := src[0]
		src = src[1:]
		if c&1 == 0 {
			run := int(c>>1) + 1
			if len(src) < run {
				return nil, ErrCorrupt
			}
			out = append(out, src[:run]...)
			src = src[run:]
			continue
		}
		length := int(c>>1) + minMatch
		off, sz := binary.Uvarint(src)
		if sz <= 0 || off == 0 || off > uint64(len(out)) {
			return nil, ErrCorrupt
		}
		src = src[sz:]
		start := len(out) - int(off)
		for j := 0; j < length; j++ { // may self-overlap
			out = append(out, out[start+j])
		}
	}
	if uint64(len(out)) != n {
		return nil, ErrCorrupt
	}
	return out, nil
}
