package compress

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBitPackRoundTrip(t *testing.T) {
	for _, width := range []int{0, 1, 3, 7, 8, 13, 31, 32, 47, 56, 57, 63, 64} {
		rng := rand.New(rand.NewSource(int64(width)))
		vals := make([]uint64, 300)
		var mask uint64 = ^uint64(0)
		if width < 64 {
			mask = uint64(1)<<uint(width) - 1
		}
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		packed := packBits(nil, vals, width)
		wantBytes := (len(vals)*width + 7) / 8
		if len(packed) != wantBytes {
			t.Fatalf("width %d: packed %d bytes, want %d", width, len(packed), wantBytes)
		}
		got := make([]uint64, len(vals))
		unpackBits(got, packed, len(vals), width)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d: val %d = %d, want %d", width, i, got[i], vals[i])
			}
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, math.MaxUint64: 64}
	for v, w := range cases {
		if bitsFor(v) != w {
			t.Errorf("bitsFor(%d) = %d, want %d", v, bitsFor(v), w)
		}
	}
}

func TestZigzagRoundTripProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func pforRoundTrip(t *testing.T, name string, vals []int64) {
	t.Helper()
	enc := PFOREncode(vals)
	dec, err := PFORDecode(enc, nil)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(dec) != len(vals) {
		t.Fatalf("%s: len %d, want %d", name, len(dec), len(vals))
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("%s: [%d] = %d, want %d", name, i, dec[i], vals[i])
		}
	}
}

func TestPFORBasic(t *testing.T) {
	pforRoundTrip(t, "empty", nil)
	pforRoundTrip(t, "single", []int64{42})
	pforRoundTrip(t, "constant", []int64{7, 7, 7, 7, 7})
	pforRoundTrip(t, "small range", []int64{100, 103, 101, 107, 100})
	pforRoundTrip(t, "negatives", []int64{-5, -3, 0, 2, -100})
	pforRoundTrip(t, "extremes", []int64{math.MinInt64, math.MaxInt64, 0})
}

func TestPFORExceptions(t *testing.T) {
	// Mostly small values, a few huge outliers: the outliers must become
	// exceptions, keeping the code width thin.
	vals := make([]int64, 2000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = int64(rng.Intn(16))
	}
	vals[3] = 1 << 40
	vals[500] = -(1 << 39)
	vals[1999] = 1 << 50
	pforRoundTrip(t, "outliers", vals)
	enc := PFOREncode(vals)
	if len(enc) > 2000*2 {
		t.Fatalf("outliers blew up encoding to %d bytes", len(enc))
	}
}

func TestPFORForcedExceptions(t *testing.T) {
	// One early and one very late exception with width 1 forces chain
	// links every 2 positions.
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(i % 2)
	}
	vals[0] = 1 << 30
	vals[4999] = 1 << 31
	pforRoundTrip(t, "forced chain", vals)
}

func TestPFORCompressionRatio(t *testing.T) {
	// Values in [0, 100): ~7 bits/value; encoding must be far below 8
	// bytes/value and below 1.5 bytes/value.
	vals := make([]int64, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = int64(rng.Intn(100))
	}
	enc := PFOREncode(vals)
	if len(enc) > len(vals)*3/2 {
		t.Fatalf("PFOR ratio too poor: %d bytes for %d values", len(enc), len(vals))
	}
}

func TestPFORDeltaSorted(t *testing.T) {
	// Sorted runs (e.g. l_orderkey) should compress dramatically better
	// with PFOR-DELTA than with plain PFOR.
	vals := make([]int64, 8192)
	v := int64(1 << 33)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		v += int64(rng.Intn(4))
		vals[i] = v
	}
	enc := PFORDeltaEncode(vals)
	dec, err := PFORDeltaDecode(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("[%d] = %d, want %d", i, dec[i], vals[i])
		}
	}
	plain := PFOREncode(vals)
	if len(enc)*4 > len(plain) {
		t.Fatalf("PFOR-DELTA (%dB) should beat PFOR (%dB) by >4x on sorted data", len(enc), len(plain))
	}
}

func TestPFORDeltaUnsortedAndEmpty(t *testing.T) {
	for _, vals := range [][]int64{nil, {9}, {5, -10, 30, 2, 2, 100, -1000}} {
		enc := PFORDeltaEncode(vals)
		dec, err := PFORDeltaDecode(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("len %d want %d", len(dec), len(vals))
		}
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("[%d] = %d want %d", i, dec[i], vals[i])
			}
		}
	}
}

func TestPFORRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		dec, err := PFORDecode(PFOREncode(vals), nil)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPFORDeltaRoundTripProperty(t *testing.T) {
	f := func(vals []int16) bool {
		in := make([]int64, len(vals))
		for i, v := range vals {
			in[i] = int64(v)
		}
		dec, err := PFORDeltaDecode(PFORDeltaEncode(in), nil)
		if err != nil || len(dec) != len(in) {
			return false
		}
		for i := range in {
			if dec[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPFORDecodeRejectsGarbage(t *testing.T) {
	if _, err := PFORDecode([]byte{}, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := PFORDecode([]byte{tagPDict, 1}, nil); err == nil {
		t.Fatal("wrong tag should fail")
	}
	if _, err := PFORDecode([]byte{tagPFOR, 200, 1, 1}, nil); err == nil {
		t.Fatal("truncated body should fail")
	}
}

func TestPDictBasic(t *testing.T) {
	vals := []string{"apple", "pear", "apple", "apple", "fig", "pear", "apple"}
	dec, err := PDictDecode(PDictEncode(vals), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("[%d] = %q, want %q", i, dec[i], vals[i])
		}
	}
}

func TestPDictEmptyAndSingleton(t *testing.T) {
	for _, vals := range [][]string{nil, {""}, {"only"}, {"", "", ""}} {
		dec, err := PDictDecode(PDictEncode(vals), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("len %d want %d", len(dec), len(vals))
		}
		for i := range vals {
			if dec[i] != vals[i] {
				t.Fatalf("[%d] = %q want %q", i, dec[i], vals[i])
			}
		}
	}
}

func TestPDictCompressionOnLowCardinality(t *testing.T) {
	// Like l_returnflag: 3 distinct single-char values.
	vals := make([]string, 10000)
	flags := []string{"A", "N", "R"}
	rng := rand.New(rand.NewSource(4))
	for i := range vals {
		vals[i] = flags[rng.Intn(3)]
	}
	enc := PDictEncode(vals)
	// 2 bits per value plus headers: must be far below 1 byte/value.
	if len(enc) > len(vals)/2 {
		t.Fatalf("PDICT too large: %d bytes for %d values", len(enc), len(vals))
	}
	dec, err := PDictDecode(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("[%d] mismatch", i)
		}
	}
}

func TestEncodeStringsPicksRawForHighCardinality(t *testing.T) {
	// Unique long strings: dictionary must lose to raw+LZ.
	vals := make([]string, 500)
	for i := range vals {
		vals[i] = strings.Repeat("x", 20) + string(rune('a'+i%26)) + strings.Repeat("y", i%17)
	}
	enc := EncodeStrings(vals)
	dec, err := DecodeStrings(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("[%d] mismatch", i)
		}
	}
}

func TestDecodeStringsRejectsGarbage(t *testing.T) {
	if _, err := DecodeStrings(nil, nil); err == nil {
		t.Fatal("nil input should fail")
	}
	if _, err := DecodeStrings([]byte{99, 0}, nil); err == nil {
		t.Fatal("unknown tag should fail")
	}
}

func TestPDictRoundTripProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		vals := make([]string, len(raw))
		for i, b := range raw {
			vals[i] = string(b)
		}
		dec, err := DecodeStrings(EncodeStrings(vals), nil)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLZRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcabcabcabcabcabc"),
		bytes.Repeat([]byte("hello world "), 1000),
		{0, 0, 0, 0, 0, 0, 0, 0},
	}
	rng := rand.New(rand.NewSource(5))
	random := make([]byte, 10000)
	rng.Read(random)
	cases = append(cases, random)
	for i, src := range cases {
		enc := LZCompress(src)
		dec, err := LZDecompress(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestLZCompressesRepetitiveData(t *testing.T) {
	src := bytes.Repeat([]byte("TPCH comment text generation "), 500)
	enc := LZCompress(src)
	if len(enc)*10 > len(src) {
		t.Fatalf("LZ ratio too poor: %d -> %d", len(src), len(enc))
	}
}

func TestLZRejectsGarbage(t *testing.T) {
	if _, err := LZDecompress([]byte{8, 1, 0xff}); err == nil {
		t.Fatal("bad match offset should fail")
	}
	if _, err := LZDecompress(nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestLZRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := LZDecompress(LZCompress(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPFORPatching(b *testing.B) {
	// Ablation: decode cost with and without exceptions present.
	mk := func(excEvery int) []byte {
		vals := make([]int64, 65536)
		rng := rand.New(rand.NewSource(6))
		for i := range vals {
			vals[i] = int64(rng.Intn(256))
			if excEvery > 0 && i%excEvery == 0 {
				vals[i] = int64(rng.Intn(1 << 40))
			}
		}
		return PFOREncode(vals)
	}
	for _, tc := range []struct {
		name string
		enc  []byte
	}{
		{"no-exceptions", mk(0)},
		{"1pct-exceptions", mk(100)},
		{"10pct-exceptions", mk(10)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dst := make([]int64, 0, 65536)
			b.SetBytes(65536 * 8)
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = PFORDecode(tc.enc, dst[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
