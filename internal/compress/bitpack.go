// Package compress implements the lightweight column compression schemes of
// Vectorwise/VectorH — PFOR, PFOR-DELTA and PDICT ("patched" schemes, [28] in
// the paper) — together with the bit-packing primitives they share and a
// small LZ77 byte compressor that stands in for Snappy/LZ4 where the paper
// uses general-purpose compression (string columns in VectorH, everything in
// the simulated Parquet/ORC formats).
//
// The patched schemes store values as thin fixed-bit-width codes. Values that
// do not fit the chosen width become "exceptions": their code slot holds the
// distance to the next exception (a linked list threaded through the codes)
// and the real value is stored verbatim after the packed section. Decoding is
// two-phase, exactly as described in §2 of the paper: phase one inflates all
// codes with a tight branch-free loop; phase two hops along the exception
// chain and patches the escaped values.
package compress

// packBits appends the low `width` bits of each value to dst as a
// little-endian bit stream. width must be in [0, 64].
func packBits(dst []byte, vals []uint64, width int) []byte {
	if width == 0 || len(vals) == 0 {
		return dst
	}
	total := (len(vals)*width + 7) / 8
	start := len(dst)
	dst = append(dst, make([]byte, total)...)
	buf := dst[start:]
	bitoff := 0
	for _, v := range vals {
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		rem := width
		for rem > 0 {
			byteIdx := bitoff >> 3
			bitIdx := bitoff & 7
			take := 8 - bitIdx
			if take > rem {
				take = rem
			}
			buf[byteIdx] |= byte(v << uint(bitIdx))
			v >>= uint(take)
			bitoff += take
			rem -= take
		}
	}
	return dst
}

// unpackBits unpacks n width-bit values from src into dst (len(dst) >= n).
// It returns the number of bytes consumed. This is the phase-one "inflate"
// loop of patched decompression: no per-value branches on data.
func unpackBits(dst []uint64, src []byte, n, width int) int {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return 0
	}
	if width <= 56 {
		mask := uint64(1)<<uint(width) - 1
		var acc uint64
		nbits, pos := 0, 0
		for i := 0; i < n; i++ {
			for nbits < width {
				if pos < len(src) {
					acc |= uint64(src[pos]) << uint(nbits)
					pos++
				}
				nbits += 8
			}
			dst[i] = acc & mask
			acc >>= uint(width)
			nbits -= width
		}
		return (n*width + 7) / 8
	}
	// Wide path (width in 57..64): byte-wise assembly.
	bitoff := 0
	for i := 0; i < n; i++ {
		var v uint64
		got, rem := 0, width
		for rem > 0 {
			byteIdx := bitoff >> 3
			bitIdx := bitoff & 7
			take := 8 - bitIdx
			if take > rem {
				take = rem
			}
			var b byte
			if byteIdx < len(src) {
				b = src[byteIdx]
			}
			bits := uint64(b>>uint(bitIdx)) & (1<<uint(take) - 1)
			v |= bits << uint(got)
			got += take
			bitoff += take
			rem -= take
		}
		dst[i] = v
	}
	return (n*width + 7) / 8
}

// unpackBits32 is unpackBits narrowed to uint32 codes (dictionary codes are
// at most maxDictEntries plus per-block exceptions, far below 2^32): same
// branch-free inflate, half the staging memory.
func unpackBits32(dst []uint32, src []byte, n, width int) {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return
	}
	mask := uint64(1)<<uint(width) - 1
	var acc uint64
	nbits, pos := 0, 0
	for i := 0; i < n; i++ {
		for nbits < width {
			if pos < len(src) {
				acc |= uint64(src[pos]) << uint(nbits)
				pos++
			}
			nbits += 8
		}
		dst[i] = uint32(acc & mask)
		acc >>= uint(width)
		nbits -= width
	}
}

// unpackOne extracts the width-bit value at index idx of a packed stream
// without unpacking its neighbors — random access for exception-chain hops.
func unpackOne(src []byte, idx, width int) uint64 {
	if width == 0 {
		return 0
	}
	bitoff := idx * width
	var v uint64
	got, rem := 0, width
	for rem > 0 {
		byteIdx := bitoff >> 3
		bitIdx := bitoff & 7
		take := 8 - bitIdx
		if take > rem {
			take = rem
		}
		var b byte
		if byteIdx < len(src) {
			b = src[byteIdx]
		}
		bits := uint64(b>>uint(bitIdx)) & (1<<uint(take) - 1)
		v |= bits << uint(got)
		got += take
		bitoff += take
		rem -= take
	}
	return v
}

// unpackBitsRange unpacks values [lo, hi) of a packed stream into
// dst[0:hi-lo] — the phase-one loop of per-vector (sub-block) decode.
func unpackBitsRange(dst []uint64, src []byte, lo, hi, width int) {
	n := hi - lo
	if width == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return
	}
	if width <= 56 {
		mask := uint64(1)<<uint(width) - 1
		startBit := lo * width
		pos := startBit >> 3
		skip := startBit & 7
		var acc uint64
		nbits := 0
		if skip > 0 && pos < len(src) {
			acc = uint64(src[pos]) >> uint(skip)
			nbits = 8 - skip
			pos++
		} else if skip > 0 {
			nbits = 8 - skip
		}
		for i := 0; i < n; i++ {
			for nbits < width {
				if pos < len(src) {
					acc |= uint64(src[pos]) << uint(nbits)
					pos++
				}
				nbits += 8
			}
			dst[i] = acc & mask
			acc >>= uint(width)
			nbits -= width
		}
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = unpackOne(src, lo+i, width)
	}
}

// bitsFor returns the minimal width able to represent v (0 for v == 0).
func bitsFor(v uint64) int {
	w := 0
	for v != 0 {
		w++
		v >>= 1
	}
	return w
}

// zigzag maps signed to unsigned so small magnitudes stay small.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
