package compress

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// This file is the execution-on-compressed-data surface of the package:
// accessors that expose the compressed representation itself — dictionary
// codes, frame bounds, sub-block ranges — so the scan and the operators
// above it can run on codes instead of materialized values (§4 of the
// VectorH paper: the schemes are cheap enough to skip decoding entirely
// when execution can run on codes).

// StrDict is a per-block string dictionary handle. Values is immutable
// after PDictOpen returns; code c denotes Values[c]. Exception strings of
// the block are appended after the stored dictionary entries, deduplicated,
// so distinct strings and distinct codes are in bijection — the property
// code-space equality relies on.
type StrDict struct {
	Values []string

	hashOnce sync.Once
	hashes   []uint64
}

// Len returns the number of dictionary entries.
func (d *StrDict) Len() int { return len(d.Values) }

// Lookup returns the code of s, or -1 if s is not in the dictionary (and
// therefore does not occur in the block). Linear scan: it runs once per
// pushed literal per block, not per row.
func (d *StrDict) Lookup(s string) int {
	for i, v := range d.Values {
		if v == s {
			return i
		}
	}
	return -1
}

// CodeHashes returns hash(Values[c]) for every code, memoized on the
// dictionary. All callers must pass the same hash function (the engine
// always passes vector.HashString); the first call wins.
func (d *StrDict) CodeHashes(hash func(string) uint64) []uint64 {
	d.hashOnce.Do(func() {
		hs := make([]uint64, len(d.Values))
		for i, v := range d.Values {
			hs[i] = hash(v)
		}
		d.hashes = hs
	})
	return d.hashes
}

// maxDecodeRows caps the row count a decoder will trust from a block
// header. Real blocks hold at most a few thousand values; the cap exists so
// a corrupted varint cannot drive a multi-gigabyte staging allocation. It
// matters specifically for w==0 (constant-run) blocks, whose row count is
// not bounded by any payload bytes.
const maxDecodeRows = 1 << 22

// rowsFit reports whether a claimed row count n at code width w is sane:
// under the allocation cap, and (for w>0) small enough that n*w packed bits
// actually fit in the remaining body. The multiplication is phrased as a
// division so a hostile n cannot wrap the packed-size arithmetic into a
// negative reslice.
func rowsFit(n uint64, w int, body []byte) bool {
	if n > maxDecodeRows {
		return false
	}
	return w <= 0 || n <= uint64(len(body))*8/uint64(w)
}

// Scratch holds decoder-internal buffers that never escape a decode call,
// so a long-lived caller (one colstore.Scanner) can reuse them across
// blocks. Decode *targets* are not reusable — they are served upstream as
// zero-copy vector views — but the code/delta staging arrays are.
type Scratch struct {
	codes  []uint64
	deltas []int64
}

func (s *Scratch) u64(n int) []uint64 {
	if s == nil {
		return make([]uint64, n)
	}
	if cap(s.codes) < n {
		s.codes = make([]uint64, n)
	}
	return s.codes[:n]
}

func (s *Scratch) i64(n int) []int64 {
	if s == nil {
		return make([]int64, 0, n)
	}
	if cap(s.deltas) < n {
		s.deltas = make([]int64, 0, n)
	}
	s.deltas = s.deltas[:0]
	return s.deltas
}

// PDictBlock is an opened PDICT block: the dictionary is parsed (including
// exception strings, deduplicated into the dictionary) but the code stream
// is not unpacked. A scan that prunes the block via the dictionary alone —
// the pushed literal is absent, or every entry fails the predicate — never
// touches the packed codes.
type PDictBlock struct {
	Dict *StrDict

	n       int
	w       int
	packed  []byte
	excPos  []int32
	excCode []uint32

	dictBytes int // encoded bytes of the dictionary + exception values
	codeBytes int // encoded bytes of the packed code section

	codesOnce sync.Once
	codes     []uint32
	codesErr  error
}

// Rows returns the number of values in the block.
func (b *PDictBlock) Rows() int { return b.n }

// DictBytes returns the encoded size of the value sections (dictionary +
// exception strings) parsed by PDictOpen.
func (b *PDictBlock) DictBytes() int { return b.dictBytes }

// CodeBytes returns the encoded size of the packed code stream, the part
// whose decode Codes() can skip.
func (b *PDictBlock) CodeBytes() int { return b.codeBytes }

// IsPDict reports whether an encoded string block uses the PDICT scheme
// (as opposed to raw+LZ) and can therefore surface a code vector.
func IsPDict(data []byte) bool { return len(data) > 0 && data[0] == tagPDict }

// IsPFOR reports whether an encoded integer block uses plain PFOR (as
// opposed to PFOR-DELTA), and therefore supports frame bounds and ranged
// decode.
func IsPFOR(data []byte) bool { return len(data) > 0 && data[0] == tagPFOR }

// PDictOpen parses the dictionary and exception chain of a PDICT block
// without unpacking the code stream. Exception values become additional
// dictionary entries (deduplicated), so the returned dictionary covers
// every string in the block and codes are canonical.
func PDictOpen(data []byte) (*PDictBlock, error) {
	if len(data) < 2 || data[0] != tagPDict {
		return nil, fmt.Errorf("%w: expected PDICT", ErrCorrupt)
	}
	body := data[1:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if n == 0 {
		return &PDictBlock{Dict: &StrDict{}}, nil
	}
	dn, sz := binary.Uvarint(body)
	if sz <= 0 || dn > maxDictEntries {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	dictStart := len(body)
	vals := make([]string, dn, dn+4)
	for i := range vals {
		l, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < l {
			return nil, ErrCorrupt
		}
		body = body[sz:]
		vals[i] = string(body[:l])
		body = body[l:]
	}
	dictBytes := dictStart - len(body)
	if len(body) < 1 {
		return nil, ErrCorrupt
	}
	w := int(body[0])
	body = body[1:]
	fe, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	ne, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if w > 64 || fe > n || !rowsFit(n, w, body) {
		return nil, ErrCorrupt
	}
	need := (int(n)*w + 7) / 8
	if len(body) < need {
		return nil, ErrCorrupt
	}
	packed := body[:need]
	body = body[need:]

	b := &PDictBlock{
		n:         int(n),
		w:         w,
		packed:    packed,
		dictBytes: dictBytes,
		codeBytes: need,
	}
	if ne > 0 {
		if ne > n {
			return nil, ErrCorrupt
		}
		// Dedup exception strings against the dictionary and each other so
		// every distinct string keeps exactly one code.
		//lint:hotpath block-open setup, sized by the dictionary, not per row
		idx := make(map[string]uint32, len(vals)+int(ne))
		for i, v := range vals {
			idx[v] = uint32(i)
		}
		b.excPos = make([]int32, 0, ne)
		b.excCode = make([]uint32, 0, ne)
		cur := int(fe)
		for i := uint64(0); i < ne; i++ {
			l, sz := binary.Uvarint(body)
			if sz <= 0 || uint64(len(body)-sz) < l {
				return nil, ErrCorrupt
			}
			body = body[sz:]
			s := string(body[:l])
			b.dictBytes += sz + int(l)
			body = body[l:]
			if cur >= int(n) {
				return nil, ErrCorrupt
			}
			c, ok := idx[s]
			if !ok {
				c = uint32(len(vals))
				vals = append(vals, s)
				idx[s] = c
			}
			b.excPos = append(b.excPos, int32(cur))
			b.excCode = append(b.excCode, c)
			cur += int(unpackOne(packed, cur, w)) + 1
		}
	}
	b.Dict = &StrDict{Values: vals}
	return b, nil
}

// Codes unpacks the code stream (memoized on the block; concurrent callers
// share one unpack). Every returned code indexes Dict.Values.
func (b *PDictBlock) Codes() ([]uint32, error) {
	b.codesOnce.Do(func() {
		if b.n == 0 {
			return
		}
		codes := make([]uint32, b.n)
		unpackBits32(codes, b.packed, b.n, b.w)
		for i, p := range b.excPos {
			codes[p] = b.excCode[i]
		}
		dn := uint32(len(b.Dict.Values))
		for _, c := range codes {
			if c >= dn {
				b.codesErr = fmt.Errorf("%w: dict code out of range", ErrCorrupt)
				return
			}
		}
		b.codes = codes
	})
	return b.codes, b.codesErr
}

// Materialize appends the block's strings to dst, going through the code
// vector — the PDT-delta merge path uses this to re-materialize before
// merging deltas, which only exist in value space.
func (b *PDictBlock) Materialize(dst []string) ([]string, error) {
	codes, err := b.Codes()
	if err != nil {
		return nil, err
	}
	vals := b.Dict.Values
	for _, c := range codes {
		dst = append(dst, vals[c])
	}
	return dst, nil
}

// PFORBounds computes a conservative value range [lo, hi] for a PFOR block
// from the frame base/width and the trailing exception values alone,
// without unpacking the code stream. ok is false when the block is not
// plain PFOR (delta frames bound deltas, not values), is empty, or the
// frame arithmetic would wrap.
func PFORBounds(data []byte) (lo, hi int64, ok bool) {
	if len(data) < 2 || data[0] != tagPFOR {
		return 0, 0, false
	}
	body := data[1:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 || n == 0 {
		return 0, 0, false
	}
	body = body[sz:]
	ref, sz := binary.Varint(body)
	if sz <= 0 {
		return 0, 0, false
	}
	body = body[sz:]
	if len(body) < 1 {
		return 0, 0, false
	}
	w := int(body[0])
	body = body[1:]
	if w >= 64 {
		return 0, 0, false
	}
	if _, sz = binary.Uvarint(body); sz <= 0 { // firstExc
		return 0, 0, false
	}
	body = body[sz:]
	ne, sz := binary.Uvarint(body)
	if sz <= 0 || ne > n {
		return 0, 0, false
	}
	body = body[sz:]
	// Overflow-safe size check: a hostile row count must not wrap the
	// packed-size arithmetic into a negative reslice.
	if w > 0 && n > uint64(len(body))*8/uint64(w) {
		return 0, 0, false
	}
	body = body[(int(n)*w+7)/8:]

	lo = ref
	hi = ref + (int64(1)<<uint(w) - 1)
	if hi < lo { // frame wraps int64: codes are modulo-2^64 offsets
		return 0, 0, false
	}
	for i := uint64(0); i < ne; i++ {
		v, sz := binary.Varint(body)
		if sz <= 0 {
			return 0, 0, false
		}
		body = body[sz:]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}

// PFORDecodeRange appends rows [lo, hi) of a PFOR block to dst without
// inflating the rest of the block — the per-vector decode the two-phase
// scan uses so late materialization skips decompression for pruned spans.
func PFORDecodeRange(data []byte, lo, hi int, dst []int64, s *Scratch) ([]int64, error) {
	if len(data) < 2 || data[0] != tagPFOR {
		return nil, fmt.Errorf("%w: expected PFOR", ErrCorrupt)
	}
	body := data[1:]
	n64, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	n := int(n64)
	if lo < 0 || hi > n || lo > hi {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d rows", ErrCorrupt, lo, hi, n)
	}
	if lo == hi {
		return dst, nil
	}
	ref, sz := binary.Varint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if len(body) < 1 {
		return nil, ErrCorrupt
	}
	w := int(body[0])
	body = body[1:]
	fe, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	ne, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if w > 64 || fe > uint64(n) {
		return nil, ErrCorrupt
	}
	// Overflow-safe size check (see PFORBounds): reject before n*w can wrap.
	if w > 0 && uint64(n) > uint64(len(body))*8/uint64(w) {
		return nil, ErrCorrupt
	}
	need := (n*w + 7) / 8
	packed := body[:need]
	body = body[need:]

	codes := s.u64(hi - lo)
	unpackBitsRange(codes, packed, lo, hi, w)
	base := len(dst)
	for _, c := range codes {
		dst = append(dst, int64(uint64(ref)+c))
	}
	// Walk the exception chain from its head; positions are ascending, so
	// the walk stops as soon as it passes the requested range.
	cur := int(fe)
	for i := uint64(0); i < ne && cur < hi; i++ {
		v, sz := binary.Varint(body)
		if sz <= 0 {
			return nil, ErrCorrupt
		}
		body = body[sz:]
		if cur >= n {
			return nil, ErrCorrupt
		}
		if cur >= lo {
			dst[base+cur-lo] = v
		}
		cur += int(unpackOne(packed, cur, w)) + 1
	}
	return dst, nil
}
