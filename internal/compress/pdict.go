package compress

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// maxDictEntries caps the PDICT dictionary; values beyond the cap (or runs of
// values too rare to be worth a slot) become patched exceptions.
const maxDictEntries = 1 << 16

// PDictEncode compresses strings with patched dictionary encoding: frequent
// values get thin fixed-width dictionary codes, infrequent values are stored
// verbatim as exceptions threaded through the code stream.
func PDictEncode(vals []string) []byte {
	out := []byte{tagPDict}
	out = binary.AppendUvarint(out, uint64(len(vals)))
	if len(vals) == 0 {
		return out
	}

	// Build the dictionary: distinct values by descending frequency,
	// ties broken by first occurrence for determinism.
	type entry struct {
		s     string
		freq  int
		first int
	}
	index := make(map[string]int, 64)
	var entries []entry
	for i, s := range vals {
		if j, ok := index[s]; ok {
			entries[j].freq++
		} else {
			index[s] = len(entries)
			entries = append(entries, entry{s: s, freq: 1, first: i})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].freq != entries[b].freq {
			return entries[a].freq > entries[b].freq
		}
		return entries[a].first < entries[b].first
	})
	if len(entries) > maxDictEntries {
		entries = entries[:maxDictEntries]
	}
	dictIdx := make(map[string]uint64, len(entries))
	for i, e := range entries {
		dictIdx[e.s] = uint64(i)
	}

	w := bitsFor(uint64(len(entries) - 1))
	if w == 0 {
		w = 1
	}
	sentinel := uint64(1) << uint(w)

	codes := make([]uint64, len(vals))
	for i, s := range vals {
		if c, ok := dictIdx[s]; ok {
			codes[i] = c
		} else {
			codes[i] = sentinel
		}
	}
	plan := exceptionPlan(codes, w)

	out = binary.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = binary.AppendUvarint(out, uint64(len(e.s)))
		out = append(out, e.s...)
	}
	out = append(out, byte(w))
	firstExc := len(vals)
	if len(plan) > 0 {
		firstExc = plan[0]
	}
	out = binary.AppendUvarint(out, uint64(firstExc))
	out = binary.AppendUvarint(out, uint64(len(plan)))

	packed := make([]uint64, len(codes))
	copy(packed, codes)
	for j, p := range plan {
		gap := uint64(1)
		if j+1 < len(plan) {
			gap = uint64(plan[j+1] - p)
		}
		packed[p] = gap - 1
	}
	out = packBits(out, packed, w)
	for _, p := range plan {
		out = binary.AppendUvarint(out, uint64(len(vals[p])))
		out = append(out, vals[p]...)
	}
	return out
}

// PDictDecode decompresses a PDictEncode block, appending to dst.
func PDictDecode(data []byte, dst []string) ([]string, error) {
	return PDictDecodeScratch(data, dst, nil)
}

// PDictDecodeScratch is PDictDecode with caller-owned staging buffers.
func PDictDecodeScratch(data []byte, dst []string, s *Scratch) ([]string, error) {
	if len(data) < 2 || data[0] != tagPDict {
		return nil, fmt.Errorf("%w: expected PDICT", ErrCorrupt)
	}
	body := data[1:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if n == 0 {
		return dst, nil
	}
	dn, sz := binary.Uvarint(body)
	if sz <= 0 || dn > maxDictEntries {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	dict := make([]string, dn)
	for i := range dict {
		l, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < l {
			return nil, ErrCorrupt
		}
		body = body[sz:]
		dict[i] = string(body[:l])
		body = body[l:]
	}
	if len(body) < 1 {
		return nil, ErrCorrupt
	}
	w := int(body[0])
	body = body[1:]
	fe, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	ne, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if w > 64 || !rowsFit(n, w, body) {
		return nil, ErrCorrupt
	}
	need := (int(n)*w + 7) / 8
	if len(body) < need {
		return nil, ErrCorrupt
	}
	codes := s.u64(int(n))
	unpackBits(codes, body[:need], int(n), w)
	body = body[need:]

	base := len(dst)
	// Phase 1: inflate dictionary codes. Exception slots hold chain links
	// which may collide with valid indexes; they are overwritten in phase 2.
	for _, c := range codes {
		if c < uint64(len(dict)) {
			dst = append(dst, dict[c])
		} else {
			dst = append(dst, "")
		}
	}
	// Phase 2: hop the chain, patching verbatim values.
	cur := int(fe)
	for i := uint64(0); i < ne; i++ {
		l, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < l {
			return nil, ErrCorrupt
		}
		body = body[sz:]
		if cur >= int(n) {
			return nil, ErrCorrupt
		}
		dst[base+cur] = string(body[:l])
		body = body[l:]
		cur += int(codes[cur]) + 1
	}
	return dst, nil
}

// EncodeStrings picks between PDICT and raw+LZ for a string column chunk,
// whichever is smaller — mirroring VectorH, which dictionary-compresses
// repetitive strings and falls back to LZ4 for the rest.
func EncodeStrings(vals []string) []byte {
	dict := PDictEncode(vals)
	raw := rawStringEncode(vals)
	if len(dict) <= len(raw) {
		return dict
	}
	return raw
}

// DecodeStrings decodes either string scheme, appending to dst.
func DecodeStrings(data []byte, dst []string) ([]string, error) {
	return DecodeStringsScratch(data, dst, nil)
}

// DecodeStringsScratch is DecodeStrings with caller-owned staging buffers.
func DecodeStringsScratch(data []byte, dst []string, s *Scratch) ([]string, error) {
	if len(data) == 0 {
		return nil, ErrCorrupt
	}
	switch data[0] {
	case tagPDict:
		return PDictDecodeScratch(data, dst, s)
	case tagRawString:
		return rawStringDecode(data, dst)
	default:
		return nil, fmt.Errorf("%w: unknown string scheme %d", ErrCorrupt, data[0])
	}
}

func rawStringEncode(vals []string) []byte {
	var body []byte
	for _, s := range vals {
		body = binary.AppendUvarint(body, uint64(len(s)))
		body = append(body, s...)
	}
	lz := LZCompress(body)
	out := []byte{tagRawString}
	out = binary.AppendUvarint(out, uint64(len(vals)))
	out = append(out, lz...)
	return out
}

func rawStringDecode(data []byte, dst []string) ([]string, error) {
	body := data[1:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	raw, err := LZDecompress(body[sz:])
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(raw)
		if sz <= 0 || uint64(len(raw)-sz) < l {
			return nil, ErrCorrupt
		}
		raw = raw[sz:]
		dst = append(dst, string(raw[:l]))
		raw = raw[l:]
	}
	return dst, nil
}
