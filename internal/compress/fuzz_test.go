package compress

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzCompressRoundTrip drives every block codec with arbitrary inputs.
// Two properties are enforced:
//
//  1. encode→decode is the identity — for PFOR and PFOR-DELTA over the
//     derived integers (eager and ranged decodes, and the frame bounds must
//     bracket every encoded value), and for PDICT over the derived strings
//     (both the eager decoder and the lazy PDictOpen/Codes/Materialize
//     path the code-form scanner uses);
//  2. decoding arbitrarily mutated bytes must fail cleanly — an error or
//     wrong values, never a panic or out-of-bounds access.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0), byte(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint16(3), byte(0x80))
	f.Add([]byte("abcabcabcabcabcabc\x00\xff\x7fabc"), uint16(17), byte(1))
	ramp := make([]byte, 0, 256)
	for i := 0; i < 32; i++ {
		ramp = append(ramp, byte(i), 0, 0, 0, 0, 0, 0, byte(i%5))
	}
	f.Add(ramp, uint16(100), byte(0xff))

	f.Fuzz(func(t *testing.T, data []byte, mutPos uint16, mutXor byte) {
		var s Scratch

		// Integers: 8 input bytes per value.
		n := len(data) / 8
		if n > 4096 {
			n = 4096
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
		}

		encPFOR := PFOREncode(vals)
		got, err := PFORDecodeScratch(encPFOR, nil, &s)
		if err != nil {
			t.Fatalf("PFOR decode of own encoding: %v", err)
		}
		eqI64(t, "PFOR", vals, got)
		if lo, hi, ok := PFORBounds(encPFOR); ok {
			for _, v := range vals {
				if v < lo || v > hi {
					t.Fatalf("PFORBounds [%d,%d] excludes encoded value %d", lo, hi, v)
				}
			}
			rl, rh := n/3, 2*n/3+1
			if rh > n {
				rh = n
			}
			part, err := PFORDecodeRange(encPFOR, rl, rh, nil, &s)
			if err != nil {
				t.Fatalf("PFORDecodeRange [%d,%d): %v", rl, rh, err)
			}
			eqI64(t, "PFOR range", vals[rl:rh], part)
		}

		encDelta := PFORDeltaEncode(vals)
		got, err = PFORDeltaDecodeScratch(encDelta, nil, &s)
		if err != nil {
			t.Fatalf("PFOR-DELTA decode of own encoding: %v", err)
		}
		eqI64(t, "PFOR-DELTA", vals, got)

		// Strings: variable-length chunks of the input bytes.
		var strs []string
		for rest := data; len(rest) > 0 && len(strs) < 4096; {
			w := int(rest[0]%13) + 1
			if w > len(rest) {
				w = len(rest)
			}
			strs = append(strs, string(rest[:w]))
			rest = rest[w:]
		}

		encDict := PDictEncode(strs)
		gotS, err := PDictDecodeScratch(encDict, nil, &s)
		if err != nil {
			t.Fatalf("PDICT decode of own encoding: %v", err)
		}
		eqStr(t, "PDICT", strs, gotS)
		pd, err := PDictOpen(encDict)
		if err != nil {
			t.Fatalf("PDictOpen of own encoding: %v", err)
		}
		if pd.Rows() != len(strs) {
			t.Fatalf("PDictOpen rows = %d, want %d", pd.Rows(), len(strs))
		}
		codes, err := pd.Codes()
		if err != nil {
			t.Fatalf("Codes of own encoding: %v", err)
		}
		for i, c := range codes {
			if pd.Dict.Values[c] != strs[i] {
				t.Fatalf("code[%d] maps to %q, want %q", i, pd.Dict.Values[c], strs[i])
			}
		}
		mat, err := pd.Materialize(nil)
		if err != nil {
			t.Fatalf("Materialize of own encoding: %v", err)
		}
		eqStr(t, "PDICT materialize", strs, mat)

		encAuto := EncodeStrings(strs)
		gotS, err = DecodeStringsScratch(encAuto, nil, &s)
		if err != nil {
			t.Fatalf("EncodeStrings decode of own encoding: %v", err)
		}
		eqStr(t, "EncodeStrings", strs, gotS)

		// Mutated bytes: every decoder over every (corrupted) encoding must
		// fail cleanly. Values may be wrong — the mutation can land in a
		// payload byte — but nothing may panic.
		for _, enc := range [][]byte{encPFOR, encDelta, encDict, encAuto} {
			if len(enc) == 0 {
				continue
			}
			m := bytes.Clone(enc)
			m[int(mutPos)%len(m)] ^= mutXor
			_, _ = PFORDecodeScratch(m, nil, &s)
			_, _ = PFORDeltaDecodeScratch(m, nil, &s)
			_, _ = DecodeStringsScratch(m, nil, &s)
			_, _, _ = PFORBounds(m)
			_, _ = PFORDecodeRange(m, 0, 1, nil, &s)
			if pb, err := PDictOpen(m); err == nil {
				if _, err := pb.Codes(); err == nil {
					_, _ = pb.Materialize(nil)
				}
			}
		}
	})
}

func eqI64(t *testing.T, what string, want, got []int64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func eqStr(t *testing.T, what string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: [%d] = %q, want %q", what, i, got[i], want[i])
		}
	}
}
