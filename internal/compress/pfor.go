package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Scheme tags stored as the first byte of every encoded block.
const (
	tagPFOR      = 1
	tagPFORDelta = 2
	tagPDict     = 3
	tagRawString = 4
)

// ErrCorrupt reports an undecodable compressed block.
var ErrCorrupt = errors.New("compress: corrupt block")

// maxExcBytes is the amortized cost estimate of one exception (chain slot
// wasted + varint value) used when choosing the code width.
const maxExcBytes = 6

// PFOREncode compresses integers with Patched Frame-Of-Reference: values are
// coded as fixed-width offsets from a block-dependent base; outliers on
// either side of the frame become patched exceptions. Arithmetic is modulo
// 2^64, so any int64 round-trips exactly.
func PFOREncode(vals []int64) []byte {
	out := []byte{tagPFOR}
	out = binary.AppendUvarint(out, uint64(len(vals)))
	if len(vals) == 0 {
		return out
	}
	return appendPatched(out, vals)
}

// PFORDecode decompresses a PFOREncode block, appending to dst.
func PFORDecode(data []byte, dst []int64) ([]int64, error) {
	return PFORDecodeScratch(data, dst, nil)
}

// PFORDecodeScratch is PFORDecode with caller-owned staging buffers, so a
// long-lived scanner stops re-allocating the code array per block.
func PFORDecodeScratch(data []byte, dst []int64, s *Scratch) ([]int64, error) {
	if len(data) < 2 || data[0] != tagPFOR {
		return nil, fmt.Errorf("%w: expected PFOR", ErrCorrupt)
	}
	body := data[1:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 || n > maxDecodeRows {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return dst, nil
	}
	return decodePatched(body[sz:], int(n), dst, s)
}

// PFORDeltaEncode compresses integers by delta-encoding consecutive values
// and applying the patched FOR machinery to the deltas; sorted or
// near-sorted runs (keys, dates) become dramatically cheaper. This is the
// scheme Lucene adopted for its inverted index.
func PFORDeltaEncode(vals []int64) []byte {
	out := []byte{tagPFORDelta}
	out = binary.AppendUvarint(out, uint64(len(vals)))
	if len(vals) == 0 {
		return out
	}
	out = binary.AppendVarint(out, vals[0])
	deltas := make([]int64, len(vals))
	prev := vals[0]
	for i := 1; i < len(vals); i++ {
		deltas[i] = vals[i] - prev // wrapping; decode wraps identically
		prev = vals[i]
	}
	return appendPatched(out, deltas)
}

// PFORDeltaDecode decompresses a PFORDeltaEncode block, appending to dst.
func PFORDeltaDecode(data []byte, dst []int64) ([]int64, error) {
	return PFORDeltaDecodeScratch(data, dst, nil)
}

// PFORDeltaDecodeScratch is PFORDeltaDecode with caller-owned staging
// buffers for the delta and code arrays.
func PFORDeltaDecodeScratch(data []byte, dst []int64, s *Scratch) ([]int64, error) {
	if len(data) < 2 || data[0] != tagPFORDelta {
		return nil, fmt.Errorf("%w: expected PFOR-DELTA", ErrCorrupt)
	}
	body := data[1:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 || n > maxDecodeRows {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if n == 0 {
		return dst, nil
	}
	first, sz := binary.Varint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	deltas, err := decodePatched(body[sz:], int(n), s.i64(int(n)), s)
	if err != nil {
		return nil, err
	}
	if s != nil {
		s.deltas = deltas // keep the grown buffer for the next block
	}
	base := len(dst)
	dst = append(dst, first)
	for i := 1; i < int(n); i++ {
		dst = append(dst, dst[base+i-1]+deltas[i])
	}
	return dst, nil
}

// chooseRefWidth picks the frame base and code width minimizing the
// estimated encoded size. For every width it slides a window of 2^w over the
// sorted values to maximize the number of in-frame values; everything
// outside the frame is an exception.
func chooseRefWidth(vals []int64) (ref int64, width int) {
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	n := len(vals)
	bestCost := n*9 + 1
	ref, width = sorted[0], 64
	for w := 0; w <= 64; w++ {
		var limit uint64
		all := w == 64
		if !all {
			limit = uint64(1) << uint(w)
		}
		// Two-pointer max-coverage window [sorted[i], sorted[i]+2^w).
		maxIn, bestLo := 0, sorted[0]
		j := 0
		for i := 0; i < n; i++ {
			if j < i {
				j = i
			}
			for j < n && (all || uint64(sorted[j])-uint64(sorted[i]) < limit) {
				j++
			}
			if j-i > maxIn {
				maxIn, bestLo = j-i, sorted[i]
			}
			if j == n {
				break
			}
		}
		cost := (n*w+7)/8 + (n-maxIn)*maxExcBytes
		if cost < bestCost {
			bestCost, ref, width = cost, bestLo, w
		}
	}
	return ref, width
}

// exceptionPlan returns the ordered exception positions for the given codes
// and width, inserting forced exceptions so that consecutive chain gaps stay
// representable in w bits (gap ∈ [1, 2^w]).
func exceptionPlan(codes []uint64, w int) []int {
	if w >= 64 {
		return nil
	}
	limit := uint64(1) << uint(w)
	var real []int
	for i, c := range codes {
		if c >= limit {
			real = append(real, i)
		}
	}
	if len(real) == 0 || w == 0 {
		// w == 0 cannot thread a chain; caller bumps the width.
		return real
	}
	maxGap := int(limit)
	plan := make([]int, 0, len(real))
	prev := real[0]
	plan = append(plan, prev)
	for _, p := range real[1:] {
		for p-prev > maxGap {
			prev += maxGap
			plan = append(plan, prev) // forced exception
		}
		plan = append(plan, p)
		prev = p
	}
	return plan
}

// appendPatched writes ref, width, the exception chain header, packed codes
// and exception values for the given int64 symbols.
func appendPatched(out []byte, vals []int64) []byte {
	ref, w := chooseRefWidth(vals)
	codes := make([]uint64, len(vals))
	for i, v := range vals {
		codes[i] = uint64(v) - uint64(ref)
	}
	plan := exceptionPlan(codes, w)
	if w == 0 && len(plan) > 0 {
		w = 1
		plan = exceptionPlan(codes, w)
	}

	packed := make([]uint64, len(codes))
	copy(packed, codes)
	firstExc := len(vals)
	if len(plan) > 0 {
		firstExc = plan[0]
		for j, p := range plan {
			gap := uint64(1)
			if j+1 < len(plan) {
				gap = uint64(plan[j+1] - p)
			}
			packed[p] = gap - 1
		}
	}
	out = binary.AppendVarint(out, ref)
	out = append(out, byte(w))
	out = binary.AppendUvarint(out, uint64(firstExc))
	out = binary.AppendUvarint(out, uint64(len(plan)))
	out = packBits(out, packed, w)
	for _, p := range plan {
		out = binary.AppendVarint(out, vals[p])
	}
	return out
}

// decodePatched performs two-phase patched decompression of n symbols.
// s may be nil; when set, its staging buffers are reused across calls.
func decodePatched(body []byte, n int, dst []int64, s *Scratch) ([]int64, error) {
	ref, sz := binary.Varint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if len(body) < 1 {
		return nil, ErrCorrupt
	}
	w := int(body[0])
	body = body[1:]
	fe, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	ne, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, ErrCorrupt
	}
	body = body[sz:]
	if w > 64 || fe > uint64(n) || !rowsFit(uint64(n), w, body) {
		return nil, ErrCorrupt
	}
	need := (n*w + 7) / 8
	if len(body) < need {
		return nil, ErrCorrupt
	}
	codes := s.u64(n)
	unpackBits(codes, body[:need], n, w)
	body = body[need:]

	// Phase 1: branch-free inflate.
	base := len(dst)
	for _, c := range codes {
		dst = append(dst, int64(uint64(ref)+c))
	}
	// Phase 2: hop the exception chain and patch.
	cur := int(fe)
	out := dst[base:]
	for i := uint64(0); i < ne; i++ {
		v, sz := binary.Varint(body)
		if sz <= 0 {
			return nil, ErrCorrupt
		}
		body = body[sz:]
		if cur >= n {
			return nil, ErrCorrupt
		}
		out[cur] = v
		cur += int(codes[cur]) + 1
	}
	return dst, nil
}
