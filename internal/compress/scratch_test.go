package compress

import (
	"fmt"
	"testing"
)

func scratchTestVals() []int64 {
	vals := make([]int64, 2048)
	for i := range vals {
		vals[i] = int64(i * 7)
		if i%97 == 0 {
			vals[i] = int64(i) << 40 // exception outside any narrow frame
		}
	}
	return vals
}

func scratchTestStrs() []string {
	strs := make([]string, 2048)
	for i := range strs {
		strs[i] = fmt.Sprintf("status-%d", i%7)
	}
	return strs
}

// TestScratchReuseAvoidsAllocs pins the contract of the *Scratch decode
// entry points: once the staging buffers have grown to block size, decoding
// further blocks into a reused destination allocates nothing at all for the
// integer codecs, and nothing beyond the unavoidable per-string conversions
// for PDICT. A long-lived scanner leans on this — the scan hot path is
// lint-gated against per-batch allocation.
func TestScratchReuseAvoidsAllocs(t *testing.T) {
	vals := scratchTestVals()
	encPFOR := PFOREncode(vals)
	encDelta := PFORDeltaEncode(vals)

	var s Scratch
	dst := make([]int64, 0, len(vals))
	// Warm: grow the scratch staging arrays once.
	if _, err := PFORDecodeScratch(encPFOR, dst[:0], &s); err != nil {
		t.Fatal(err)
	}
	if _, err := PFORDeltaDecodeScratch(encDelta, dst[:0], &s); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(50, func() {
		if _, err := PFORDecodeScratch(encPFOR, dst[:0], &s); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("PFOR decode with warm scratch allocated %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := PFORDeltaDecodeScratch(encDelta, dst[:0], &s); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("PFOR-DELTA decode with warm scratch allocated %.1f times per op, want 0", n)
	}

	// PDICT decode must allocate string headers, but the code staging array
	// has to come from the scratch: with it, strictly fewer allocations per
	// block than without.
	encDict := PDictEncode(scratchTestStrs())
	sdst := make([]string, 0, 2048)
	if _, err := PDictDecodeScratch(encDict, sdst[:0], &s); err != nil {
		t.Fatal(err)
	}
	withScratch := testing.AllocsPerRun(50, func() {
		if _, err := PDictDecodeScratch(encDict, sdst[:0], &s); err != nil {
			t.Fatal(err)
		}
	})
	without := testing.AllocsPerRun(50, func() {
		if _, err := PDictDecodeScratch(encDict, sdst[:0], nil); err != nil {
			t.Fatal(err)
		}
	})
	if withScratch >= without {
		t.Fatalf("PDICT scratch reuse should drop allocations: with=%.1f without=%.1f", withScratch, without)
	}
}

// BenchmarkDecodeScratch measures block decode with the staging buffers
// reused across calls, the configuration the scanner runs; allocs/op is the
// headline number (0 for the integer codecs once warm).
func BenchmarkDecodeScratch(b *testing.B) {
	vals := scratchTestVals()
	encPFOR := PFOREncode(vals)
	encDelta := PFORDeltaEncode(vals)
	encDict := PDictEncode(scratchTestStrs())

	b.Run("pfor", func(b *testing.B) {
		var s Scratch
		dst := make([]int64, 0, len(vals))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PFORDecodeScratch(encPFOR, dst[:0], &s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pfor-delta", func(b *testing.B) {
		var s Scratch
		dst := make([]int64, 0, len(vals))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PFORDeltaDecodeScratch(encDelta, dst[:0], &s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pdict", func(b *testing.B) {
		var s Scratch
		dst := make([]string, 0, 2048)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PDictDecodeScratch(encDict, dst[:0], &s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
