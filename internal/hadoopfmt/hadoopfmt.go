// Package hadoopfmt implements simplified "Parquet-like" and "ORC-like"
// columnar file formats with the characteristics the VectorH paper measures
// against (§2, Figure 1):
//
//   - PAX layout: row groups of a fixed ROW COUNT hold one chunk per column,
//     so compressible columns are split into many too-small chunks instead
//     of filling fixed-size blocks;
//   - general-purpose (Snappy-like LZ) compression applied to every chunk,
//     adding decompression cost to all scans;
//   - value-at-a-time decoding through a per-value interface call, unlike
//     the vectorized decompression of the VectorH format;
//   - MinMax statistics placed differently per format: the ORC-like format
//     keeps them in the footer (readable without touching data), while the
//     Parquet-like format embeds them in each chunk header, so evaluating
//     the stats forces the chunk to be read — the paper's explanation of
//     why Presto-on-Parquet reads more data than the columns contain.
//
// The int encodings also differ on purpose: Parquet-like stores int64
// columns as raw 8-byte values ("inefficient handling of 64-bits integers"),
// ORC-like uses varints.
package hadoopfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"vectorh/internal/compress"
	"vectorh/internal/hdfs"
	"vectorh/internal/vector"
)

// Kind selects the simulated format family.
type Kind int

// Format families.
const (
	Parquet Kind = iota
	ORC
)

// String names the format.
func (k Kind) String() string {
	if k == ORC {
		return "orc-like"
	}
	return "parquet-like"
}

// SkipMode models how a reader uses MinMax statistics (Figure 1).
type SkipMode int

const (
	// NoSkip ignores statistics entirely (Impala in the paper).
	NoSkip SkipMode = iota
	// SkipCPU reads every chunk but skips decompression of disqualified
	// row groups (Presto per footnote 2; the only option on Parquet-like
	// files, whose stats sit inside the chunk).
	SkipCPU
	// SkipIO skips both the read and the decompression using footer
	// statistics (only possible on the ORC-like format).
	SkipIO
)

// Options parameterizes a writer.
type Options struct {
	Kind         Kind
	RowGroupRows int // rows per row group; default 8192
}

type chunkMeta struct {
	Offset int64 `json:"offset"`
	Size   int   `json:"size"`
	// Footer statistics (ORC-like only; Parquet-like keeps them in the
	// chunk header).
	NumMin int64 `json:"numMin,omitempty"`
	NumMax int64 `json:"numMax,omitempty"`
}

type rowGroupMeta struct {
	Rows   int         `json:"rows"`
	Chunks []chunkMeta `json:"chunks"` // one per column
}

type fileMeta struct {
	Kind      Kind           `json:"kind"`
	Schema    vector.Schema  `json:"schema"`
	RowGroups []rowGroupMeta `json:"rowGroups"`
	Rows      int64          `json:"rows"`
}

// Writer produces one PAX file.
type Writer struct {
	fs   *hdfs.Cluster
	w    *hdfs.Writer
	path string
	opts Options
	meta fileMeta
	off  int64

	pend []pendCol
	rows int
}

type pendCol struct {
	i64 []int64
	f64 []float64
	str []string
}

// NewWriter creates path and returns a writer for the schema.
func NewWriter(fs *hdfs.Cluster, path, node string, schema vector.Schema, opts Options) (*Writer, error) {
	if opts.RowGroupRows <= 0 {
		opts.RowGroupRows = 8192
	}
	hw, err := fs.Create(path, node)
	if err != nil {
		return nil, err
	}
	return &Writer{
		fs:   fs,
		w:    hw,
		path: path,
		opts: opts,
		meta: fileMeta{Kind: opts.Kind, Schema: schema.Clone()},
		pend: make([]pendCol, len(schema)),
	}, nil
}

// Append buffers a dense batch, cutting row groups at the configured count.
func (w *Writer) Append(b *vector.Batch) error {
	if b.Sel != nil {
		b = b.Compact()
	}
	for ci := range w.meta.Schema {
		v := b.Col(ci)
		switch v.Kind() {
		case vector.Int32:
			for _, x := range v.Int32s() {
				w.pend[ci].i64 = append(w.pend[ci].i64, int64(x))
			}
		case vector.Int64:
			w.pend[ci].i64 = append(w.pend[ci].i64, v.Int64s()...)
		case vector.Float64:
			w.pend[ci].f64 = append(w.pend[ci].f64, v.Float64s()...)
		case vector.String:
			w.pend[ci].str = append(w.pend[ci].str, v.Strings()...)
		default:
			return fmt.Errorf("hadoopfmt: unsupported kind %v", v.Kind())
		}
	}
	w.rows += b.Len()
	for w.rows >= w.opts.RowGroupRows {
		if err := w.flushGroup(w.opts.RowGroupRows); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) flushGroup(n int) error {
	rg := rowGroupMeta{Rows: n}
	for ci, f := range w.meta.Schema {
		var raw []byte
		var lo, hi int64
		switch f.Type.Kind {
		case vector.Int32, vector.Int64:
			vals := w.pend[ci].i64[:n]
			lo, hi = minmax64(vals)
			if w.opts.Kind == Parquet {
				for _, v := range vals {
					raw = binary.LittleEndian.AppendUint64(raw, uint64(v))
				}
			} else {
				for _, v := range vals {
					raw = binary.AppendVarint(raw, v)
				}
			}
			w.pend[ci].i64 = w.pend[ci].i64[n:]
		case vector.Float64:
			vals := w.pend[ci].f64[:n]
			for _, v := range vals {
				raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
			}
			w.pend[ci].f64 = w.pend[ci].f64[n:]
		case vector.String:
			vals := w.pend[ci].str[:n]
			for _, v := range vals {
				raw = binary.AppendUvarint(raw, uint64(len(v)))
				raw = append(raw, v...)
			}
			w.pend[ci].str = w.pend[ci].str[n:]
		}
		// Chunk = header (Parquet-like embeds the stats here) + LZ body.
		var chunk []byte
		if w.opts.Kind == Parquet {
			chunk = binary.AppendVarint(chunk, lo)
			chunk = binary.AppendVarint(chunk, hi)
		}
		chunk = append(chunk, compress.LZCompress(raw)...)
		cm := chunkMeta{Offset: w.off, Size: len(chunk)}
		if w.opts.Kind == ORC {
			cm.NumMin, cm.NumMax = lo, hi
		}
		rg.Chunks = append(rg.Chunks, cm)
		if _, err := w.w.Write(chunk); err != nil {
			return err
		}
		w.off += int64(len(chunk))
	}
	w.meta.RowGroups = append(w.meta.RowGroups, rg)
	w.meta.Rows += int64(n)
	w.rows -= n
	return nil
}

// Close flushes the final row group and the footer.
func (w *Writer) Close() error {
	if w.rows > 0 {
		if err := w.flushGroup(w.rows); err != nil {
			return err
		}
	}
	footer, err := json.Marshal(&w.meta)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(footer); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], uint32(len(footer)))
	if _, err := w.w.Write(tail[:]); err != nil {
		return err
	}
	return w.w.Close()
}

func minmax64(vals []int64) (lo, hi int64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}

// Reader reads a PAX file.
type Reader struct {
	fs   *hdfs.Cluster
	path string
	node string
	meta fileMeta
	r    *hdfs.Reader
}

// Open reads the footer of a PAX file.
func Open(fs *hdfs.Cluster, path, node string) (*Reader, error) {
	r, err := fs.Open(path, node)
	if err != nil {
		return nil, err
	}
	size, err := fs.Size(path)
	if err != nil {
		return nil, err
	}
	if size < 4 {
		return nil, fmt.Errorf("hadoopfmt: %s truncated", path)
	}
	var tail [4]byte
	if _, err := r.ReadAt(tail[:], size-4); err != nil {
		return nil, err
	}
	flen := int64(binary.LittleEndian.Uint32(tail[:]))
	if flen <= 0 || flen > size-4 {
		return nil, fmt.Errorf("hadoopfmt: %s bad footer length %d", path, flen)
	}
	footer := make([]byte, flen)
	if _, err := r.ReadAt(footer, size-4-flen); err != nil {
		return nil, err
	}
	rd := &Reader{fs: fs, path: path, node: node, r: r}
	if err := json.Unmarshal(footer, &rd.meta); err != nil {
		return nil, fmt.Errorf("hadoopfmt: %s bad footer: %w", path, err)
	}
	return rd, nil
}

// Schema returns the file schema.
func (r *Reader) Schema() vector.Schema { return r.meta.Schema }

// Rows returns the total row count.
func (r *Reader) Rows() int64 { return r.meta.Rows }

// Kind returns the format family of the file.
func (r *Reader) Kind() Kind { return r.meta.Kind }

// RangePred is a [Lo, Hi] predicate on one numeric column used for row-group
// skipping.
type RangePred struct {
	Col    string
	Lo, Hi int64
}

// RowIter iterates rows value-at-a-time — deliberately: each value crosses a
// per-column decoder interface, modelling the tuple-at-a-time readers the
// paper profiles.
type RowIter struct {
	r       *Reader
	cols    []int
	kinds   []vector.Kind
	pred    *RangePred
	predCol int // index within cols; -1 when pred column not projected
	mode    SkipMode

	rg       int
	rowInRG  int
	rgRows   int
	decoders []valueDecoder
	row      []any
}

// Scan opens a row iterator over the projection. The predicate column must
// be part of cols when a predicate is given.
func (r *Reader) Scan(cols []string, pred *RangePred, mode SkipMode) (*RowIter, error) {
	it := &RowIter{r: r, pred: pred, predCol: -1, mode: mode}
	for _, name := range cols {
		ci := r.meta.Schema.Index(name)
		if ci < 0 {
			return nil, fmt.Errorf("hadoopfmt: no column %q in %s", name, r.path)
		}
		if pred != nil && name == pred.Col {
			it.predCol = len(it.cols)
		}
		it.cols = append(it.cols, ci)
		it.kinds = append(it.kinds, r.meta.Schema[ci].Type.Kind)
	}
	if pred != nil && it.predCol < 0 {
		return nil, fmt.Errorf("hadoopfmt: predicate column %q not in projection", pred.Col)
	}
	if mode == SkipIO && r.meta.Kind != ORC {
		// Parquet-like stats live inside the chunks; IO cannot be
		// skipped. Degrade exactly like the paper observes.
		it.mode = SkipCPU
	}
	it.row = make([]any, len(it.cols))
	return it, nil
}

// Next returns the next row (valid until the following call), or nil at EOF.
// Rows of skipped row groups are not returned.
func (it *RowIter) Next() ([]any, error) {
	for {
		if it.decoders == nil {
			ok, err := it.openGroup()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
		}
		if it.rowInRG >= it.rgRows {
			it.decoders = nil
			it.rg++
			continue
		}
		for i, d := range it.decoders {
			v, err := d.next()
			if err != nil {
				return nil, err
			}
			it.row[i] = v
		}
		it.rowInRG++
		if it.pred != nil {
			switch v := it.row[it.predCol].(type) {
			case int64:
				if v < it.pred.Lo || v > it.pred.Hi {
					continue
				}
			case int32:
				if int64(v) < it.pred.Lo || int64(v) > it.pred.Hi {
					continue
				}
			}
		}
		return it.row, nil
	}
}

// openGroup positions the iterator on the next row group that survives
// statistics-based skipping under the configured mode.
func (it *RowIter) openGroup() (bool, error) {
	meta := &it.r.meta
	for ; it.rg < len(meta.RowGroups); it.rg++ {
		rg := &meta.RowGroups[it.rg]
		// Footer-stats skipping (ORC-like + SkipIO): no chunk bytes read.
		if it.mode == SkipIO && it.pred != nil {
			ci := it.cols[it.predCol]
			cm := rg.Chunks[ci]
			if cm.NumMax < it.pred.Lo || cm.NumMin > it.pred.Hi {
				continue
			}
		}
		// Read the projected chunks (IO happens here).
		chunks := make([][]byte, len(it.cols))
		for i, ci := range it.cols {
			cm := rg.Chunks[ci]
			buf := make([]byte, cm.Size)
			if _, err := it.r.r.ReadAt(buf, cm.Offset); err != nil {
				return false, err
			}
			chunks[i] = buf
		}
		// Chunk-header-stats skipping (SkipCPU): bytes were read; only
		// decompression is avoided.
		if it.mode == SkipCPU && it.pred != nil {
			lo, hi, body, err := it.chunkStats(chunks[it.predCol], it.cols[it.predCol], rg)
			if err != nil {
				return false, err
			}
			_ = body
			if hi < it.pred.Lo || lo > it.pred.Hi {
				continue
			}
		}
		it.decoders = make([]valueDecoder, len(it.cols))
		for i := range it.cols {
			d, err := newValueDecoder(meta.Kind, it.kinds[i], stripHeader(meta.Kind, it.kinds[i], chunks[i]))
			if err != nil {
				return false, err
			}
			it.decoders[i] = d
		}
		it.rowInRG, it.rgRows = 0, rg.Rows
		return true, nil
	}
	return false, nil
}

// chunkStats extracts the MinMax of a chunk: from the chunk header for
// Parquet-like files, from the footer for ORC-like files.
func (it *RowIter) chunkStats(chunk []byte, ci int, rg *rowGroupMeta) (lo, hi int64, body []byte, err error) {
	if it.r.meta.Kind == Parquet {
		lo, n1 := binary.Varint(chunk)
		if n1 <= 0 {
			return 0, 0, nil, fmt.Errorf("hadoopfmt: bad chunk header")
		}
		hi, n2 := binary.Varint(chunk[n1:])
		if n2 <= 0 {
			return 0, 0, nil, fmt.Errorf("hadoopfmt: bad chunk header")
		}
		return lo, hi, chunk[n1+n2:], nil
	}
	cm := rg.Chunks[ci]
	return cm.NumMin, cm.NumMax, chunk, nil
}

// stripHeader removes the Parquet-like embedded stats header from a numeric
// chunk.
func stripHeader(k Kind, vk vector.Kind, chunk []byte) []byte {
	if k != Parquet {
		return chunk
	}
	_, n1 := binary.Varint(chunk)
	_, n2 := binary.Varint(chunk[n1:])
	return chunk[n1+n2:]
}

// valueDecoder decodes one value per call — the tuple-at-a-time path.
type valueDecoder interface {
	next() (any, error)
}

func newValueDecoder(k Kind, vk vector.Kind, chunk []byte) (valueDecoder, error) {
	raw, err := compress.LZDecompress(chunk)
	if err != nil {
		return nil, err
	}
	switch vk {
	case vector.Int32:
		if k == Parquet {
			return &fixedIntDecoder{raw: raw, width32: true}, nil
		}
		return &varIntDecoder{raw: raw, width32: true}, nil
	case vector.Int64:
		if k == Parquet {
			return &fixedIntDecoder{raw: raw}, nil
		}
		return &varIntDecoder{raw: raw}, nil
	case vector.Float64:
		return &floatDecoder{raw: raw}, nil
	case vector.String:
		return &stringDecoder{raw: raw}, nil
	default:
		return nil, fmt.Errorf("hadoopfmt: unsupported kind %v", vk)
	}
}

type fixedIntDecoder struct {
	raw     []byte
	pos     int
	width32 bool
}

func (d *fixedIntDecoder) next() (any, error) {
	if d.pos+8 > len(d.raw) {
		return nil, fmt.Errorf("hadoopfmt: int chunk exhausted")
	}
	v := int64(binary.LittleEndian.Uint64(d.raw[d.pos:]))
	d.pos += 8
	if d.width32 {
		return int32(v), nil
	}
	return v, nil
}

type varIntDecoder struct {
	raw     []byte
	pos     int
	width32 bool
}

func (d *varIntDecoder) next() (any, error) {
	v, n := binary.Varint(d.raw[d.pos:])
	if n <= 0 {
		return nil, fmt.Errorf("hadoopfmt: varint chunk exhausted")
	}
	d.pos += n
	if d.width32 {
		return int32(v), nil
	}
	return v, nil
}

type floatDecoder struct {
	raw []byte
	pos int
}

func (d *floatDecoder) next() (any, error) {
	if d.pos+8 > len(d.raw) {
		return nil, fmt.Errorf("hadoopfmt: float chunk exhausted")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.raw[d.pos:]))
	d.pos += 8
	return v, nil
}

type stringDecoder struct {
	raw []byte
	pos int
}

func (d *stringDecoder) next() (any, error) {
	l, n := binary.Uvarint(d.raw[d.pos:])
	if n <= 0 || d.pos+n+int(l) > len(d.raw) {
		return nil, fmt.Errorf("hadoopfmt: string chunk exhausted")
	}
	d.pos += n
	v := string(d.raw[d.pos : d.pos+int(l)])
	d.pos += int(l)
	return v, nil
}

// ColumnBytes reports the total encoded size of one column across all row
// groups — the quantity compared in the bottom chart of Figure 1.
func (r *Reader) ColumnBytes(col string) (int64, error) {
	ci := r.meta.Schema.Index(col)
	if ci < 0 {
		return 0, fmt.Errorf("hadoopfmt: no column %q", col)
	}
	var total int64
	for _, rg := range r.meta.RowGroups {
		total += int64(rg.Chunks[ci].Size)
	}
	return total, nil
}
