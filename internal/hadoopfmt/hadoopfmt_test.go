package hadoopfmt

import (
	"fmt"
	"math/rand"
	"testing"

	"vectorh/internal/hdfs"
	"vectorh/internal/vector"
)

var schema = vector.Schema{
	{Name: "k", Type: vector.TInt64},
	{Name: "qty", Type: vector.TInt32},
	{Name: "price", Type: vector.TFloat64},
	{Name: "flag", Type: vector.TString},
}

func testFS() *hdfs.Cluster {
	return hdfs.NewCluster([]string{"n1", "n2", "n3"}, hdfs.Config{BlockSize: 1 << 16, Replication: 2})
}

func writeFile(t *testing.T, fs *hdfs.Cluster, path string, kind Kind, rows, rgRows int) {
	t.Helper()
	w, err := NewWriter(fs, path, "n1", schema, Options{Kind: kind, RowGroupRows: rgRows})
	if err != nil {
		t.Fatal(err)
	}
	flags := []string{"A", "N", "R"}
	for off := 0; off < rows; off += 512 {
		n := rows - off
		if n > 512 {
			n = 512
		}
		b := vector.NewBatchForSchema(schema, n)
		for i := 0; i < n; i++ {
			row := off + i
			b.AppendRow(int64(row), int32(row%7), float64(row)/3, flags[row%3])
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, it *RowIter) [][]any {
	t.Helper()
	var out [][]any
	for {
		row, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			return out
		}
		cp := make([]any, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
}

func TestRoundTripBothKinds(t *testing.T) {
	for _, kind := range []Kind{Parquet, ORC} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := testFS()
			writeFile(t, fs, "/f", kind, 5000, 1000)
			r, err := Open(fs, "/f", "n1")
			if err != nil {
				t.Fatal(err)
			}
			if r.Rows() != 5000 || r.Kind() != kind {
				t.Fatalf("rows=%d kind=%v", r.Rows(), r.Kind())
			}
			it, err := r.Scan([]string{"k", "qty", "price", "flag"}, nil, NoSkip)
			if err != nil {
				t.Fatal(err)
			}
			rows := readAll(t, it)
			if len(rows) != 5000 {
				t.Fatalf("read %d rows", len(rows))
			}
			for i, row := range rows {
				if row[0].(int64) != int64(i) || row[1].(int32) != int32(i%7) ||
					row[2].(float64) != float64(i)/3 || row[3].(string) != []string{"A", "N", "R"}[i%3] {
					t.Fatalf("row %d = %v", i, row)
				}
			}
		})
	}
}

func TestPredicateFiltering(t *testing.T) {
	fs := testFS()
	writeFile(t, fs, "/f", ORC, 4000, 500)
	r, _ := Open(fs, "/f", "n1")
	it, err := r.Scan([]string{"k"}, &RangePred{Col: "k", Lo: 100, Hi: 199}, SkipIO)
	if err != nil {
		t.Fatal(err)
	}
	rows := readAll(t, it)
	if len(rows) != 100 {
		t.Fatalf("filtered rows = %d, want 100", len(rows))
	}
}

func TestORCSkipIOReadsLess(t *testing.T) {
	fs := testFS()
	writeFile(t, fs, "/f", ORC, 20000, 1000)
	read := func(mode SkipMode) int64 {
		fs.ResetStats()
		r, _ := Open(fs, "/f", "n1")
		it, err := r.Scan([]string{"k"}, &RangePred{Col: "k", Lo: 0, Hi: 999}, mode)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, it)
		s := fs.Stats()
		return s.LocalBytesRead + s.RemoteBytesRead
	}
	ioSkip := read(SkipIO)
	cpuSkip := read(SkipCPU)
	noSkip := read(NoSkip)
	if !(ioSkip < cpuSkip) {
		t.Fatalf("SkipIO (%d) should read less than SkipCPU (%d)", ioSkip, cpuSkip)
	}
	// SkipCPU reads all chunks, like NoSkip: same IO, less CPU.
	if cpuSkip != noSkip {
		t.Fatalf("SkipCPU IO (%d) should equal NoSkip IO (%d)", cpuSkip, noSkip)
	}
}

func TestParquetCannotSkipIO(t *testing.T) {
	fs := testFS()
	writeFile(t, fs, "/f", Parquet, 20000, 1000)
	r, _ := Open(fs, "/f", "n1")
	// Requesting SkipIO degrades to SkipCPU on Parquet-like files.
	fs.ResetStats()
	it, err := r.Scan([]string{"k"}, &RangePred{Col: "k", Lo: 0, Hi: 999}, SkipIO)
	if err != nil {
		t.Fatal(err)
	}
	rows := readAll(t, it)
	if len(rows) != 1000 {
		t.Fatalf("rows = %d", len(rows))
	}
	s := fs.Stats()
	colBytes, _ := r.ColumnBytes("k")
	if got := s.LocalBytesRead + s.RemoteBytesRead; got < colBytes {
		t.Fatalf("parquet-like read %d bytes, below the full column size %d; stats should force chunk reads", got, colBytes)
	}
}

func TestORCVarintsSmallerThanParquetFixed(t *testing.T) {
	// "Parquet could be close were it not for its inefficient handling of
	// 64-bits integers": int64 column sizes must rank ORC < Parquet.
	fsP, fsO := testFS(), testFS()
	writeFile(t, fsP, "/f", Parquet, 30000, 4096)
	writeFile(t, fsO, "/f", ORC, 30000, 4096)
	rp, _ := Open(fsP, "/f", "n1")
	ro, _ := Open(fsO, "/f", "n1")
	bp, _ := rp.ColumnBytes("k")
	bo, _ := ro.ColumnBytes("k")
	if bo >= bp {
		t.Fatalf("orc int64 bytes %d should be < parquet %d", bo, bp)
	}
}

func TestScanErrors(t *testing.T) {
	fs := testFS()
	writeFile(t, fs, "/f", ORC, 100, 50)
	r, _ := Open(fs, "/f", "n1")
	if _, err := r.Scan([]string{"ghost"}, nil, NoSkip); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := r.Scan([]string{"qty"}, &RangePred{Col: "k", Lo: 0, Hi: 1}, NoSkip); err == nil {
		t.Fatal("predicate column outside projection should fail")
	}
	if _, err := Open(fs, "/missing", "n1"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestOpenRejectsCorruptFooter(t *testing.T) {
	fs := testFS()
	fs.WriteFile("/bad", "n1", []byte{1, 2, 3})
	if _, err := Open(fs, "/bad", "n1"); err == nil {
		t.Fatal("truncated file should fail")
	}
	fs.WriteFile("/bad2", "n1", []byte{'x', 'y', 'z', 'w', 3, 0, 0, 0})
	if _, err := Open(fs, "/bad2", "n1"); err == nil {
		t.Fatal("garbage footer should fail")
	}
}

func TestRowGroupSplitByRowCount(t *testing.T) {
	// The paper's point about thin columns: a constant column still gets
	// one chunk per row group, instead of one big block.
	fs := testFS()
	cs := vector.Schema{{Name: "c", Type: vector.TInt64}}
	w, _ := NewWriter(fs, "/f", "n1", cs, Options{Kind: ORC, RowGroupRows: 100})
	b := vector.NewBatchForSchema(cs, 1000)
	for i := 0; i < 1000; i++ {
		b.AppendRow(int64(7))
	}
	w.Append(b)
	w.Close()
	r, _ := Open(fs, "/f", "n1")
	if got := len(r.meta.RowGroups); got != 10 {
		t.Fatalf("row groups = %d, want 10", got)
	}
}

func TestLargeRandomRoundTrip(t *testing.T) {
	fs := testFS()
	rng := rand.New(rand.NewSource(10))
	w, _ := NewWriter(fs, "/f", "n1", schema, Options{Kind: Parquet, RowGroupRows: 777})
	want := make([][]any, 0, 3000)
	b := vector.NewBatchForSchema(schema, 3000)
	for i := 0; i < 3000; i++ {
		row := []any{rng.Int63n(1 << 40), int32(rng.Intn(100)), rng.Float64(), fmt.Sprintf("s%d", rng.Intn(50))}
		b.AppendRow(row...)
		want = append(want, row)
	}
	w.Append(b)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := Open(fs, "/f", "n1")
	it, _ := r.Scan([]string{"k", "qty", "price", "flag"}, nil, NoSkip)
	rows := readAll(t, it)
	if len(rows) != 3000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			if rows[i][c] != want[i][c] {
				t.Fatalf("row %d col %d: %v != %v", i, c, rows[i][c], want[i][c])
			}
		}
	}
}
