// vectorh-lint is the engine's invariant checker: a multichecker over the
// custom analyzers in internal/lint (ctxpropagate, lockdiscipline,
// pairedrelease, hotpathalloc, errpos).
//
// Two ways to run it:
//
//	vectorh-lint ./...                                # standalone
//	go vet -vettool=$(which vectorh-lint) ./...       # as a vet tool
//
// Standalone mode loads packages via `go list -export` and prints findings
// as file:line:col: message (analyzer), exiting 1 when any are found. Vet
// mode speaks cmd/go's unit-check protocol, so findings integrate with the
// build cache (clean packages are not re-analyzed). Select a subset of
// analyzers with e.g. -ctxpropagate=false.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vectorh/internal/lint"
	"vectorh/internal/lint/driver"
)

func main() {
	// Two handshakes cmd/go performs before trusting a vet tool, both
	// answered before normal flag parsing: `-V=full` fingerprints the tool
	// for the build cache, `-flags` asks which flags it may forward.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		driver.PrintVersion(os.Stdout)
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagsJSON()
		return
	}

	enabled := map[string]*bool{}
	for _, a := range lint.All {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: vectorh-lint [packages]\n   or: go vet -vettool=vectorh-lint [packages]\n\nanalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var analyzers []*lint.Analyzer
	for _, a := range lint.All {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && driver.IsVetConfig(args[0]) {
		driver.RunUnitchecker(args[0], analyzers) // exits
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, fset, err := driver.LoadPatterns(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vectorh-lint: %v\n", err)
		os.Exit(1)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vectorh-lint: %s: %v\n", pkg.Path, err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "vectorh-lint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// printFlagsJSON answers cmd/go's `-flags` probe: a JSON description of the
// flags the driver accepts, so `go vet -vettool=... -ctxpropagate=false`
// forwards correctly.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(lint.All))
	for _, a := range lint.All {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}
