// Command vectorh-demo walks through the engine end to end: load TPC-H,
// show a distributed plan, run a query with the per-operator profile,
// trickle-update, and survive a node failure.
package main

import (
	"flag"
	"fmt"
	"log"

	"vectorh"
	"vectorh/internal/core"
	"vectorh/internal/plan"
	"vectorh/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	flag.Parse()

	db, err := vectorh.Open(vectorh.Config{Nodes: []string{"node1", "node2", "node3", "node4"}})
	if err != nil {
		log.Fatal(err)
	}
	d := tpch.Generate(*sf, 1)
	if err := tpch.LoadIntoEngine(db.Engine, d, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded TPC-H SF=%.3f on %v\n\n", *sf, db.Nodes())

	q5, err := tpch.BuildQuery(5, db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.QueryOpts(q5, core.QueryOptions{Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TPC-H Q5 distributed plan:")
	fmt.Println(res.Explain)
	fmt.Printf("Q5 in %v, %d result rows; hottest operators:\n", res.Elapsed, len(res.Rows))
	fmt.Println(core.FormatProfile(res.Profile, 8))

	// Trickle updates through PDTs.
	ob, lb := tpch.RF1(d, 50, 7)
	if err := db.InsertRows("orders", ob); err != nil {
		log.Fatal(err)
	}
	if err := db.InsertRows("lineitem", lb); err != nil {
		log.Fatal(err)
	}
	n, _ := db.TableRows("lineitem")
	fmt.Printf("after RF1 trickle insert: lineitem has %d rows\n", n)

	// Node failure: recompute affinity, re-replicate, keep answering.
	if err := db.KillNode("node2"); err != nil {
		log.Fatal(err)
	}
	rows, err := db.Query(plan.Aggregate(plan.Scan("lineitem", "l_quantity"), nil,
		plan.A("s", plan.Sum, plan.Dec("l_quantity"))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after node2 failure, workers=%v, sum(l_quantity)=%v\n", db.Nodes(), rows[0][0])
}
