// Per-query TPC-H micro-benchmarks emitting a machine-readable
// BENCH_tpch.json, so the performance trajectory of the execution engine is
// tracked in-repo rather than in log archaeology:
//
//	vectorh-bench -exp tpchbench -set baseline   # record the "before" column
//	vectorh-bench -exp tpchbench                 # record/refresh "current"
//
// The file keeps two columns per query — baseline (recorded before a
// refactor) and current — with ns/op, allocs/op and bytes/op, measured with
// runtime.MemStats around a calibrated repetition loop (the same shape as
// testing.B, but under our own control so a full 22-query sweep stays under
// a minute).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vectorh/internal/core"
	"vectorh/internal/experiments"
	"vectorh/internal/tpch"
)

// queryBench is one query's measurement.
type queryBench struct {
	Query       string `json:"query"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Rows        int    `json:"rows"`
}

// refreshBench records the RF1/RF2-as-SQL refresh experiment: stream
// timings plus the post-refresh validation verdict (see `-exp refresh`).
type refreshBench struct {
	RF1Rows          int64 `json:"rf1_rows"`
	RF1NsPerRow      int64 `json:"rf1_ns_per_row"`
	RF2Rows          int64 `json:"rf2_rows"`
	RF2NsPerRow      int64 `json:"rf2_ns_per_row"`
	Propagated       int   `json:"propagated_partitions"`
	QueriesValidated int   `json:"queries_validated"`
	AllMatch         bool  `json:"all_match"`
}

// concurrencyBench records the serving-layer experiment: aggregate
// queries/sec plus per-query latency percentiles of the SQL TPC-H workload
// at 1/4/16/64/256 concurrent prepared-statement sessions through
// vectorh-serve (see `-exp concurrency`). Before holds the curve recorded
// prior to the plan-cache/contention work; a refresh moves the previous
// points there, so the file carries its own before/after comparison.
type concurrencyBench struct {
	MaxConcurrent    int                     `json:"max_concurrent"`
	Validated        int                     `json:"queries_validated"`
	AllMatch         bool                    `json:"all_match"`
	PlanCacheHitRate float64                 `json:"plan_cache_hit_rate,omitempty"`
	Before           []concurrencyBenchPoint `json:"before,omitempty"`
	Points           []concurrencyBenchPoint `json:"points"`
}

type concurrencyBenchPoint struct {
	Sessions int     `json:"sessions"`
	Queries  int     `json:"queries"`
	ElapsedM int64   `json:"elapsed_ms"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P95Ms    float64 `json:"p95_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
}

// selectivityBench records the scan-selectivity sweep: per predicate
// window, the late-materialized pushdown pipeline's physical scan work and
// per-op cost next to the Select-above-scan pipeline's (see `-exp
// selectivity`).
type selectivityBench struct {
	LineitemRows int64                   `json:"lineitem_rows"`
	AllMatch     bool                    `json:"all_match"`
	Points       []selectivityBenchPoint `json:"points"`
}

type selectivityBenchPoint struct {
	Window          string  `json:"window"`
	Selectivity     float64 `json:"selectivity"`
	Rows            int64   `json:"rows"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BlocksRead      int64   `json:"blocks_read"`
	BytesDecoded    int64   `json:"bytes_decoded"`
	SpansPruned     int64   `json:"spans_pruned"`
	OffNsPerOp      int64   `json:"off_ns_per_op"`
	OffBlocksRead   int64   `json:"off_blocks_read"`
	OffBytesDecoded int64   `json:"off_bytes_decoded"`
}

// compressionBench records the execute-on-compressed-data experiment: per
// table the bytes-on-disk (raw vs encoded), and per target query the decode
// bytes, skipped bytes, pruned spans and per-op cost with compressed-domain
// execution on and off (see `-exp compression`).
type compressionBench struct {
	AllMatch bool                    `json:"all_match"`
	Storage  []compressionBenchTable `json:"storage"`
	Points   []compressionBenchPoint `json:"points"`
}

type compressionBenchTable struct {
	Table        string  `json:"table"`
	RawBytes     int64   `json:"raw_bytes"`
	EncodedBytes int64   `json:"encoded_bytes"`
	Ratio        float64 `json:"ratio"`
}

type compressionBenchPoint struct {
	Query                string `json:"query"`
	Rows                 int    `json:"rows"`
	NsPerOp              int64  `json:"ns_per_op"`
	AllocsPerOp          int64  `json:"allocs_per_op"`
	BytesDecoded         int64  `json:"bytes_decoded"`
	BytesMaterialized    int64  `json:"bytes_materialized"`
	BytesSkipped         int64  `json:"bytes_skipped"`
	SpansPruned          int64  `json:"spans_pruned"`
	OffNsPerOp           int64  `json:"off_ns_per_op"`
	OffBytesDecoded      int64  `json:"off_bytes_decoded"`
	OffBytesMaterialized int64  `json:"off_bytes_materialized"`
	OffBytesSkipped      int64  `json:"off_bytes_skipped"`
	OffSpansPruned       int64  `json:"off_spans_pruned"`
}

// joinOrderBench records the join-order experiment: per join-heavy query,
// the hand-written join order's ns/op next to the stats-driven optimizer's
// (see `-exp joinorder`). Ratio is optimizer over hand; the planner's
// acceptance bar is ratio <= 1.1 on Q09 and Q21.
type joinOrderBench struct {
	AllMatch bool                  `json:"all_match"`
	Points   []joinOrderBenchPoint `json:"points"`
}

type joinOrderBenchPoint struct {
	Query     string  `json:"query"`
	HandNsOp  int64   `json:"hand_ns_per_op"`
	OptNsOp   int64   `json:"optimizer_ns_per_op"`
	Ratio     float64 `json:"ratio"`
	Rows      int     `json:"rows"`
	RowsMatch bool    `json:"rows_match"`
}

// benchFile is the on-disk BENCH_tpch.json schema.
type benchFile struct {
	SF          float64           `json:"sf"`
	Nodes       int               `json:"nodes"`
	Threads     int               `json:"threads"`
	Baseline    []queryBench      `json:"baseline,omitempty"`
	Current     []queryBench      `json:"current,omitempty"`
	Refresh     *refreshBench     `json:"refresh,omitempty"`
	Concurrency *concurrencyBench `json:"concurrency,omitempty"`
	Selectivity *selectivityBench `json:"selectivity,omitempty"`
	JoinOrder   *joinOrderBench   `json:"joinorder,omitempty"`
	Compression *compressionBench `json:"compression,omitempty"`
}

// runTPCHBench measures every TPC-H query and writes the JSON file, filling
// the column named by set ("baseline" or "current") and preserving the other.
func runTPCHBench(sf float64, nodes int, path, set string, perQuery time.Duration) error {
	if set != "baseline" && set != "current" {
		return fmt.Errorf("-set must be baseline or current, got %q", set)
	}
	const threads, partitions = 2, 6
	eng, err := experiments.NewEngine(nodes, threads, partitions)
	if err != nil {
		return err
	}
	d := tpch.Generate(sf, 9)
	if err := tpch.LoadIntoEngine(eng, d, partitions); err != nil {
		return err
	}

	results := make([]queryBench, 0, tpch.NumQueries)
	for q := 1; q <= tpch.NumQueries; q++ {
		qb, err := benchOneQuery(eng, q, perQuery)
		if err != nil {
			return fmt.Errorf("Q%02d: %w", q, err)
		}
		fmt.Printf("  %-4s %12d ns/op %10d allocs/op %12d B/op %6d rows\n",
			qb.Query, qb.NsPerOp, qb.AllocsPerOp, qb.BytesPerOp, qb.Rows)
		results = append(results, qb)
	}

	file := benchFile{SF: sf, Nodes: nodes, Threads: threads}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &file); err != nil {
			// Refuse to overwrite: the baseline column cannot be
			// regenerated once the change it predates has landed.
			return fmt.Errorf("%s exists but is not valid JSON (%w); fix or remove it first", path, err)
		}
		if file.SF != sf || file.Nodes != nodes {
			fmt.Fprintf(os.Stderr,
				"warning: %s was recorded at sf=%v nodes=%d, this run is sf=%v nodes=%d — the retained column is not comparable\n",
				path, file.SF, file.Nodes, sf, nodes)
		}
		file.SF, file.Nodes, file.Threads = sf, nodes, threads
	}
	if set == "baseline" {
		file.Baseline = results
	} else {
		file.Current = results
	}
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s column of %s\n", set, path)
	if file.Baseline != nil && file.Current != nil {
		printDelta(file)
	}
	return nil
}

// runRefresh runs the RF1/RF2-as-SQL refresh experiment, prints its report
// and records the numbers in the refresh block of BENCH_tpch.json (the
// baseline/current query columns are preserved).
func runRefresh(sf float64, nodes int, path string) error {
	res, err := experiments.Refresh(sf, nodes)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	if !res.AllMatch() {
		return fmt.Errorf("post-refresh validation failed: a query diverged from the recomputed expected result")
	}
	const threads = 2 // experiments.Refresh's engine configuration
	file := benchFile{SF: sf, Nodes: nodes, Threads: threads}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON (%w); fix or remove it first", path, err)
		}
		if file.SF != sf || file.Nodes != nodes {
			fmt.Fprintf(os.Stderr,
				"warning: %s was recorded at sf=%v nodes=%d, this run is sf=%v nodes=%d — the retained columns are not comparable\n",
				path, file.SF, file.Nodes, sf, nodes)
		}
		file.SF, file.Nodes, file.Threads = sf, nodes, threads
	}
	rf1Rows := res.RF1Orders + res.RF1Items
	rf2Rows := res.RF2Orders + res.RF2Items
	file.Refresh = &refreshBench{
		RF1Rows:          rf1Rows,
		RF1NsPerRow:      res.RF1Time.Nanoseconds() / max(rf1Rows, 1),
		RF2Rows:          rf2Rows,
		RF2NsPerRow:      res.RF2Time.Nanoseconds() / max(rf2Rows, 1),
		Propagated:       res.PropagatedPartitions,
		QueriesValidated: len(res.Queries),
		AllMatch:         true,
	}
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote refresh block of %s\n", path)
	return nil
}

// runConcurrency runs the serving-layer concurrency experiment, prints its
// report and records the numbers in the concurrency block of
// BENCH_tpch.json (other blocks are preserved).
func runConcurrency(sf float64, nodes int, path string) error {
	res, err := experiments.Concurrency(sf, nodes)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	if !res.AllMatch {
		return fmt.Errorf("concurrency validation failed: a remote result diverged from in-process execution")
	}
	if res.PlanCacheHitRate < 0.9 {
		return fmt.Errorf("plan cache hit rate %.1f%% is below the 90%% gate for a repeated-query workload",
			100*res.PlanCacheHitRate)
	}
	const threads = 2
	file := benchFile{SF: sf, Nodes: nodes, Threads: threads}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON (%w); fix or remove it first", path, err)
		}
		if file.SF != sf || file.Nodes != nodes {
			fmt.Fprintf(os.Stderr,
				"warning: %s was recorded at sf=%v nodes=%d, this run is sf=%v nodes=%d — the retained columns are not comparable\n",
				path, file.SF, file.Nodes, sf, nodes)
		}
		file.SF, file.Nodes, file.Threads = sf, nodes, threads
	}
	cb := &concurrencyBench{
		MaxConcurrent:    res.MaxConcurrent,
		Validated:        res.Validated,
		AllMatch:         res.AllMatch,
		PlanCacheHitRate: res.PlanCacheHitRate,
	}
	// Preserve the previously recorded curve as the "before" column (once:
	// the first refresh after a curve was recorded moves it there).
	if prev := file.Concurrency; prev != nil {
		if len(prev.Before) > 0 {
			cb.Before = prev.Before
		} else {
			cb.Before = prev.Points
		}
	}
	for _, p := range res.Points {
		cb.Points = append(cb.Points, concurrencyBenchPoint{
			Sessions: p.Sessions, Queries: p.Queries,
			ElapsedM: p.Elapsed.Milliseconds(), QPS: p.QPS,
			P50Ms: float64(p.P50.Microseconds()) / 1000,
			P95Ms: float64(p.P95.Microseconds()) / 1000,
			P99Ms: float64(p.P99.Microseconds()) / 1000,
		})
	}
	file.Concurrency = cb
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote concurrency block of %s\n", path)
	return nil
}

// runSelectivity runs the scan-selectivity sweep, prints its report and
// records the numbers in the selectivity block of BENCH_tpch.json (other
// blocks are preserved).
func runSelectivity(sf float64, nodes int, path string) error {
	res, err := experiments.Selectivity(sf, nodes)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	if !res.AllMatch() {
		return fmt.Errorf("selectivity validation failed: the pushdown pipeline diverged from the Select-above-scan pipeline")
	}
	const threads = 2 // experiments.Selectivity's engine configuration
	file := benchFile{SF: sf, Nodes: nodes, Threads: threads}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON (%w); fix or remove it first", path, err)
		}
		if file.SF != sf || file.Nodes != nodes {
			fmt.Fprintf(os.Stderr,
				"warning: %s was recorded at sf=%v nodes=%d, this run is sf=%v nodes=%d — the retained columns are not comparable\n",
				path, file.SF, file.Nodes, sf, nodes)
		}
		file.SF, file.Nodes, file.Threads = sf, nodes, threads
	}
	sb := &selectivityBench{LineitemRows: res.Rows, AllMatch: res.AllMatch()}
	for _, p := range res.Points {
		sb.Points = append(sb.Points, selectivityBenchPoint{
			Window: p.Label, Selectivity: p.Selectivity, Rows: p.Rows,
			NsPerOp: p.NsPerOp, AllocsPerOp: p.AllocsPerOp,
			BlocksRead: p.BlocksRead, BytesDecoded: p.BytesDecoded, SpansPruned: p.SpansPruned,
			OffNsPerOp: p.OffNsPerOp, OffBlocksRead: p.OffBlocksRead, OffBytesDecoded: p.OffBytesDecoded,
		})
	}
	file.Selectivity = sb
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote selectivity block of %s\n", path)
	return nil
}

// runCompression runs the execute-on-compressed-data experiment, prints its
// report and records the numbers in the compression block of
// BENCH_tpch.json (other blocks are preserved).
func runCompression(sf float64, nodes int, path string) error {
	res, err := experiments.Compression(sf, nodes)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	if !res.AllMatch() {
		return fmt.Errorf("compression validation failed: the code-space pipeline diverged from the value-space pipeline")
	}
	const threads = 2 // experiments.Compression's engine configuration
	file := benchFile{SF: sf, Nodes: nodes, Threads: threads}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON (%w); fix or remove it first", path, err)
		}
		if file.SF != sf || file.Nodes != nodes {
			fmt.Fprintf(os.Stderr,
				"warning: %s was recorded at sf=%v nodes=%d, this run is sf=%v nodes=%d — the retained columns are not comparable\n",
				path, file.SF, file.Nodes, sf, nodes)
		}
		file.SF, file.Nodes, file.Threads = sf, nodes, threads
	}
	cb := &compressionBench{AllMatch: res.AllMatch()}
	for _, t := range res.Storage {
		cb.Storage = append(cb.Storage, compressionBenchTable{
			Table: t.Table, RawBytes: t.RawBytes, EncodedBytes: t.EncodedBytes, Ratio: t.Ratio(),
		})
	}
	for _, p := range res.Points {
		cb.Points = append(cb.Points, compressionBenchPoint{
			Query: p.Query, Rows: p.Rows,
			NsPerOp: p.NsPerOp, AllocsPerOp: p.AllocsPerOp,
			BytesDecoded: p.BytesDecoded, BytesMaterialized: p.BytesMaterialized,
			BytesSkipped: p.BytesSkipped, SpansPruned: p.SpansPruned,
			OffNsPerOp: p.OffNsPerOp, OffBytesDecoded: p.OffBytesDecoded,
			OffBytesMaterialized: p.OffBytesMaterialized,
			OffBytesSkipped:      p.OffBytesSkipped, OffSpansPruned: p.OffSpansPruned,
		})
	}
	file.Compression = cb
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote compression block of %s\n", path)
	return nil
}

// runJoinOrder runs the join-order experiment, prints its report and
// records the numbers in the joinorder block of BENCH_tpch.json (other
// blocks are preserved).
func runJoinOrder(sf float64, nodes int, path string) error {
	res, err := experiments.JoinOrder(sf, nodes)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	if !res.AllMatch() {
		return fmt.Errorf("join-order validation failed: an optimizer-ordered plan diverged from its hand-built counterpart")
	}
	const threads = 2 // experiments.JoinOrder's engine configuration
	file := benchFile{SF: sf, Nodes: nodes, Threads: threads}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON (%w); fix or remove it first", path, err)
		}
		if file.SF != sf || file.Nodes != nodes {
			fmt.Fprintf(os.Stderr,
				"warning: %s was recorded at sf=%v nodes=%d, this run is sf=%v nodes=%d — the retained columns are not comparable\n",
				path, file.SF, file.Nodes, sf, nodes)
		}
		file.SF, file.Nodes, file.Threads = sf, nodes, threads
	}
	jb := &joinOrderBench{AllMatch: res.AllMatch()}
	for _, p := range res.Points {
		jb.Points = append(jb.Points, joinOrderBenchPoint{
			Query: fmt.Sprintf("Q%02d", p.Q), HandNsOp: p.HandNs, OptNsOp: p.SQLNs,
			Ratio: p.Ratio(), Rows: p.Rows, RowsMatch: p.Match,
		})
	}
	file.JoinOrder = jb
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote joinorder block of %s\n", path)
	return nil
}

// benchOneQuery runs one query repeatedly (plan build + execution per op,
// matching BenchmarkTPCHPerQuery) and reports per-op time and allocations.
func benchOneQuery(eng *core.Engine, q int, budget time.Duration) (queryBench, error) {
	run := func() (int, error) {
		p, err := tpch.BuildQuery(q, eng)
		if err != nil {
			return 0, err
		}
		rows, err := eng.Query(p)
		return len(rows), err
	}
	// Warm-up run: loads column caches and calibrates the repetition count.
	t0 := time.Now()
	nrows, err := run()
	if err != nil {
		return queryBench{}, err
	}
	warm := time.Since(t0)
	n := 1
	if warm > 0 {
		n = int(budget / warm)
	}
	if n < 1 {
		n = 1
	}
	if n > 1000 {
		n = 1000
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 = time.Now()
	for i := 0; i < n; i++ {
		if _, err := run(); err != nil {
			return queryBench{}, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return queryBench{
		Query:       fmt.Sprintf("Q%02d", q),
		NsPerOp:     elapsed.Nanoseconds() / int64(n),
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / int64(n),
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(n),
		Rows:        nrows,
	}, nil
}

// printDelta renders the baseline→current movement per query.
func printDelta(f benchFile) {
	base := make(map[string]queryBench, len(f.Baseline))
	for _, qb := range f.Baseline {
		base[qb.Query] = qb
	}
	fmt.Println("baseline -> current:")
	for _, cur := range f.Current {
		b, ok := base[cur.Query]
		if !ok || b.NsPerOp == 0 || b.AllocsPerOp == 0 {
			continue
		}
		fmt.Printf("  %-4s time %+6.1f%%  allocs %+6.1f%%\n", cur.Query,
			100*(float64(cur.NsPerOp)/float64(b.NsPerOp)-1),
			100*(float64(cur.AllocsPerOp)/float64(b.AllocsPerOp)-1))
	}
}
