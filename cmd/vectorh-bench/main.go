// Command vectorh-bench regenerates the paper's evaluation artifacts (see
// the experiment index in DESIGN.md):
//
//	vectorh-bench -exp fig1     # Figure 1: format micro-benchmarks
//	vectorh-bench -exp fig2     # Figure 2: affinity under node failure
//	vectorh-bench -exp fig5     # §5 rewrite-rule ablation
//	vectorh-bench -exp load     # §7 load-path comparison
//	vectorh-bench -exp tpch     # Figure 7: TPC-H table + speedups
//	vectorh-bench -exp updates  # Figure 7 bottom: RF1/RF2 + GeoDiff
//	vectorh-bench -exp refresh  # RF1/RF2 as SQL DML + post-refresh validation
//	vectorh-bench -exp concurrency # multi-session throughput through vectorh-serve
//	vectorh-bench -exp selectivity # scan pushdown vs Select-above-scan sweep
//	vectorh-bench -exp joinorder   # hand-written vs optimizer-chosen join order
//	vectorh-bench -exp compression # execute-on-compressed-data: code-space vs value-space
//	vectorh-bench -exp profile  # Appendix: Q1 per-operator profile
//	vectorh-bench -exp all
//
// Engine performance tracking (not part of -exp all; writes BENCH_tpch.json):
//
//	vectorh-bench -exp tpchbench -set baseline  # record pre-change column
//	vectorh-bench -exp tpchbench                # record/refresh current column
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vectorh/internal/baseline"
	"vectorh/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig2|fig5|load|tpch|updates|refresh|concurrency|selectivity|joinorder|compression|profile|tpchbench|all")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	nodes := flag.Int("nodes", 3, "simulated worker nodes")
	jsonPath := flag.String("json", "BENCH_tpch.json", "tpchbench: output file")
	set := flag.String("set", "current", "tpchbench: column to fill (baseline|current)")
	perQuery := flag.Duration("benchtime", 200*time.Millisecond, "tpchbench: measurement budget per query")
	flag.Parse()

	runs := map[string]func() error{
		"fig1": func() error {
			res, err := experiments.Fig1(*sf)
			if err != nil {
				return err
			}
			fmt.Print(res.Report())
			return nil
		},
		"fig2": func() error {
			rep, err := experiments.Fig2()
			if err != nil {
				return err
			}
			fmt.Print(rep)
			return nil
		},
		"fig5": func() error {
			res, err := experiments.Fig5Ablation(*sf, *nodes)
			if err != nil {
				return err
			}
			fmt.Println("§5 rewrite-rule ablation (paper: 5.02/5.64/5.67/25.51/26.14 s):")
			for _, r := range res {
				fmt.Printf("  %-24s %v\n", r.Name, r.Elapsed)
			}
			return nil
		},
		"load": func() error {
			res, err := experiments.LoadPaths(9, 8000)
			if err != nil {
				return err
			}
			fmt.Println("§7 load paths (paper: 1237s remote / 850s local / 892s connector):")
			for _, r := range res {
				fmt.Printf("  %-24s %-12v local=%dKB remote=%dKB\n", r.Name, r.Elapsed,
					r.LocalBytes/1024, r.RemoteBytes/1024)
			}
			return nil
		},
		"tpch": func() error {
			res, err := experiments.TPCH(*sf, *nodes,
				[]baseline.Flavor{baseline.HAWQ, baseline.SparkSQL, baseline.Impala, baseline.Hive})
			if err != nil {
				return err
			}
			fmt.Print(res.Report())
			return nil
		},
		"updates": func() error {
			res, err := experiments.UpdateImpact(*sf, *nodes, []int{1, 3, 6, 12, 14})
			if err != nil {
				return err
			}
			fmt.Println("update impact (paper: Hive GeoDiff 138.2%, VectorH 102.8%):")
			for _, r := range res {
				fmt.Printf("  %-8s RF1=%-12v RF2=%-12v GeoDiff=%.1f%%\n", r.System, r.RF1, r.RF2, r.GeoDiff*100)
			}
			return nil
		},
		"refresh": func() error {
			return runRefresh(*sf, *nodes, *jsonPath)
		},
		"concurrency": func() error {
			return runConcurrency(*sf, *nodes, *jsonPath)
		},
		"selectivity": func() error {
			return runSelectivity(*sf, *nodes, *jsonPath)
		},
		"joinorder": func() error {
			return runJoinOrder(*sf, *nodes, *jsonPath)
		},
		"compression": func() error {
			return runCompression(*sf, *nodes, *jsonPath)
		},
		"tpchbench": func() error {
			return runTPCHBench(*sf, *nodes, *jsonPath, *set, *perQuery)
		},
		"profile": func() error {
			rep, err := experiments.ProfileQ1(*sf, *nodes)
			if err != nil {
				return err
			}
			fmt.Print(rep)
			return nil
		},
	}
	order := []string{"fig1", "fig2", "fig5", "load", "tpch", "updates", "refresh", "profile"}
	if *exp != "all" {
		run, ok := runs[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		if err := run(); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, name := range order {
		fmt.Printf("===== %s =====\n", name)
		if err := runs[name](); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
