// Command vectorh-serve exposes an in-process VectorH cluster over TCP: the
// serving layer that turns the engine library into a multi-session service.
// It preloads TPC-H data (like cmd/vectorh-sql) and speaks the
// length-prefixed JSON frame protocol of internal/server.
//
//	$ vectorh-serve -addr 127.0.0.1:15432 -sf 0.01 -max-concurrent 8
//	listening on 127.0.0.1:15432 (sf=0.01, 3 nodes, max 8 concurrent queries)
//
// Connect with the bundled client:
//
//	$ vectorh-sql -connect 127.0.0.1:15432
//	vectorh> select count(*) from lineitem;
//
// SIGINT/SIGTERM shut the server down cleanly: in-flight queries are
// cancelled, sessions drained, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/server"
	"vectorh/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:15432", "listen address")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload")
	nodes := flag.Int("nodes", 3, "simulated cluster size")
	partitions := flag.Int("partitions", 6, "table partition count")
	threads := flag.Int("threads", 2, "exchange threads per node")
	maxConcurrent := flag.Int("max-concurrent", 4, "admission control: max concurrently executing queries")
	queueWait := flag.Duration("queue-wait", 10*time.Second, "admission control: max queue wait before rejecting")
	metricsAddr := flag.String("metrics-addr", "", "optional HTTP listen address serving Prometheus metrics at /metrics")
	slowLog := flag.String("slow-log", "", "path of the structured slow-query log (JSON lines; - for stderr)")
	slowThreshold := flag.Duration("slow-threshold", 500*time.Millisecond, "queries at or above this duration are slow-logged")
	flag.Parse()

	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	db, err := vectorh.Open(vectorh.Config{
		Nodes:          names,
		ThreadsPerNode: *threads,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loading TPC-H sf=%g onto %d nodes...\n", *sf, *nodes)
	start := time.Now()
	d := tpch.Generate(*sf, 42)
	if err := tpch.LoadIntoEngine(db.Engine, d, *partitions); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded in %v\n", time.Since(start).Round(time.Millisecond))

	opt := server.Options{MaxConcurrent: *maxConcurrent, QueueWait: *queueWait}
	var slowFile *os.File
	if *slowLog == "-" {
		opt.SlowQueryLog, opt.SlowQueryThreshold = os.Stderr, *slowThreshold
	} else if *slowLog != "" {
		slowFile, err = os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		opt.SlowQueryLog, opt.SlowQueryThreshold = slowFile, *slowThreshold
	}
	srv := server.New(db, opt)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("listening on %s (sf=%g, %d nodes, max %d concurrent queries)\n",
		bound, *sf, *nodes, *maxConcurrent)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			text, err := srv.Metrics()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprint(w, text)
		})
		metricsSrv = &http.Server{Handler: mux}
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
		go metricsSrv.Serve(ln) //lint:ctx metrics sidecar; lifetime is the process
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down...")
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d sessions, %d queries completed, %d cancelled, %d rows (%d slow-logged)\n",
		st.TotalSessions, st.CompletedQueries, st.CancelledQueries, st.RowsServed, st.SlowQueries)
	if slowFile != nil {
		slowFile.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
