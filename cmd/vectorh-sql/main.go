// Command vectorh-sql is an interactive SQL shell. By default it runs over
// an in-process VectorH cluster preloaded with TPC-H data; with -connect it
// becomes a network client of a vectorh-serve instance instead (same
// statements, same rendering, no local engine). Statements end with ';';
// several statements may share a line (or an input buffer) and run in
// order. INSERT/UPDATE/DELETE run through the PDT trickle-update path.
//
//	$ go run ./cmd/vectorh-sql -sf 0.01 -nodes 3
//	$ go run ./cmd/vectorh-sql -connect 127.0.0.1:15432
//	vectorh> select count(*) from lineitem;
//	vectorh> explain select n_name, sum(l_extendedprice) from lineitem ...;
//	vectorh> explain analyze select count(*) from lineitem where l_quantity < 24;
//	vectorh> insert into region (r_regionkey, r_name, r_comment) values (5, 'ATLANTIS', 'sunk');
//	vectorh> update orders set o_orderpriority = '1-URGENT' where o_orderkey = 7; delete from region where r_regionkey = 5;
//	vectorh> \d          -- list tables (embedded mode)
//	vectorh> \q 6        -- run the TPC-H Q6 SQL text
//	vectorh> \prepare q6 select sum(l_extendedprice * l_discount) from lineitem where l_quantity < ?;
//	vectorh> \execute q6 24
//	vectorh> \timing     -- toggle per-statement wall clock
//	vectorh> \rf1 10     -- run refresh stream RF1 (10 new orders) as SQL (embedded mode)
//	vectorh> \rf2 10     -- run refresh stream RF2 (delete 10 orders) as SQL (embedded mode)
//	vectorh> \quit
//
// Scripted use: when statements arrive via stdin (or -q) and any of them
// fails, vectorh-sql exits non-zero after processing the remaining input —
// CI smoke steps assert on it. -timeout applies a per-statement deadline;
// in -connect mode a deadline expiring mid-query sends a wire-level cancel.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/server"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
	"vectorh/internal/vector"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload (embedded mode)")
	nodes := flag.Int("nodes", 3, "simulated cluster size (embedded mode)")
	partitions := flag.Int("partitions", 6, "table partition count (embedded mode)")
	threads := flag.Int("threads", 2, "exchange threads per node (embedded mode)")
	connect := flag.String("connect", "", "host:port of a vectorh-serve instance (client mode)")
	timeout := flag.Duration("timeout", 0, "per-statement deadline (0 = none); expiring mid-query cancels it")
	timing := flag.Bool("timing", false, "print per-statement wall clock")
	query := flag.String("q", "", "run one statement (or ';'-separated script) and exit")
	flag.Parse()

	sh := &shell{timing: *timing, timeout: *timeout}
	if *connect != "" {
		cl, err := server.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		if err := cl.Ping(); err != nil {
			fatal(err)
		}
		sh.remote = cl
		fmt.Fprintf(os.Stderr, "connected to %s\n", *connect)
	} else {
		names := make([]string, *nodes)
		for i := range names {
			names[i] = fmt.Sprintf("node%d", i+1)
		}
		db, err := vectorh.Open(vectorh.Config{
			Nodes:          names,
			ThreadsPerNode: *threads,
			BlockSize:      1 << 18,
			Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
			MsgBytes:       16 << 10,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loading TPC-H sf=%g onto %d nodes...\n", *sf, *nodes)
		start := time.Now()
		d := tpch.Generate(*sf, 42)
		if err := tpch.LoadIntoEngine(db.Engine, d, *partitions); err != nil {
			fatal(err)
		}
		sh.db = db
		sh.data = d
		sh.rfSeed = 1000
		fmt.Fprintf(os.Stderr, "loaded in %v; statements end with ';', \\quit exits\n", time.Since(start).Round(time.Millisecond))
	}

	if *query != "" {
		sh.run(*query)
		sh.exit()
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "vectorh> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			sh.exit()
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if sh.meta(trimmed) {
				sh.exit()
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			sh.run(buf.String())
			buf.Reset()
			prompt = "vectorh> "
		} else if buf.Len() > 0 {
			prompt = "      -> "
		}
	}
}

// shell holds the REPL state: an embedded database (plus the generated
// TPC-H data the refresh-stream commands derive their inserts and delete
// keys from) or a remote serving session, and the failure flag scripted
// runs exit on.
type shell struct {
	db     *vectorh.DB
	data   *tpch.Data
	remote *server.Client
	rfSeed int64 // bumped per refresh so repeated \rf1 inserts fresh keys

	timing  bool
	timeout time.Duration
	failed  bool

	// named prepared statements (\prepare); exactly one side is set per
	// entry depending on mode.
	wireStmts  map[string]*server.PreparedStmt
	localStmts map[string]*sql.Prepared
}

// exit terminates the process: non-zero when any statement failed, so
// scripts piped through stdin can be asserted on.
func (sh *shell) exit() {
	if sh.failed {
		os.Exit(1)
	}
	os.Exit(0)
}

// fail records a statement failure and prints the error.
func (sh *shell) fail(err error) {
	sh.failed = true
	fmt.Println(err)
}

// stmtCtx returns the per-statement context.
func (sh *shell) stmtCtx() (context.Context, context.CancelFunc) {
	if sh.timeout > 0 {
		return context.WithTimeout(context.Background(), sh.timeout)
	}
	return context.Background(), func() {}
}

// meta handles backslash commands; it reports whether the REPL should exit.
func (sh *shell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\exit":
		return true
	case "\\timing":
		sh.timing = !sh.timing
		fmt.Printf("timing %s\n", map[bool]string{true: "on", false: "off"}[sh.timing])
	case "\\stats":
		if sh.remote == nil {
			fmt.Println("\\stats requires -connect")
			return false
		}
		st, err := sh.remote.Stats()
		if err != nil {
			sh.fail(err)
			return false
		}
		fmt.Printf("sessions=%d active=%d queued=%d completed=%d cancelled=%d failed=%d rejected=%d rows=%d stmts=%d max_concurrent=%d\n",
			st.Sessions, st.ActiveQueries, st.QueuedQueries, st.CompletedQueries,
			st.CancelledQueries, st.FailedQueries, st.RejectedQueries, st.RowsServed,
			st.OpenStatements, st.MaxConcurrent)
		if pc := st.PlanCache; pc != nil {
			total := pc.Hits + pc.Misses
			rate := 0.0
			if total > 0 {
				rate = 100 * float64(pc.Hits) / float64(total)
			}
			fmt.Printf("plan cache: hits=%d misses=%d (%.1f%% hit rate) evictions=%d invalidations=%d entries=%d\n",
				pc.Hits, pc.Misses, rate, pc.Evictions, pc.Invalidations, pc.Entries)
		}
		if p := st.Process; p != nil {
			fmt.Printf("process: uptime=%s goroutines=%d heap=%.1fMB gc=%d (%.2fms paused) alloc=%dMB\n",
				(time.Duration(p.UptimeSec) * time.Second).String(), p.Goroutines,
				float64(p.HeapBytes)/(1<<20), p.NumGC,
				float64(p.GCPauseNs)/1e6, p.TotalAllocMB)
		}
		if sc := st.Scan; sc != nil {
			fmt.Printf("scan: blocks=%d decoded=%.1fMB skipped=%.1fMB materialized=%.1fMB pruned=%d cache_hits=%d\n",
				sc.BlocksRead, float64(sc.BytesDecoded)/(1<<20), float64(sc.BytesSkipped)/(1<<20),
				float64(sc.BytesMaterialized)/(1<<20), sc.SpansPruned, sc.CacheHits)
		}
		for _, ts := range st.Storage {
			if ts.EncodedBytes == 0 {
				continue
			}
			fmt.Printf("compression: %-10s %5.2fx (%.1fMB raw -> %.1fMB encoded)\n",
				ts.Table, ts.Ratio, float64(ts.RawBytes)/(1<<20), float64(ts.EncodedBytes)/(1<<20))
		}
		if st.SlowQueries > 0 {
			fmt.Printf("slow queries logged: %d\n", st.SlowQueries)
		}
	case "\\d":
		if sh.db == nil {
			fmt.Println("\\d requires embedded mode (table listing is not part of the wire protocol yet)")
			return false
		}
		for _, t := range sh.db.SortedTables() {
			s, _ := sh.db.TableSchema(t)
			rows, _ := sh.db.TableRows(t)
			fmt.Printf("%-10s %8d rows\n", t, rows)
			for _, f := range s {
				fmt.Printf("    %-16s %s\n", f.Name, f.Type)
			}
		}
	case "\\q":
		if len(fields) != 2 {
			fmt.Println("usage: \\q N  (run the TPC-H query N SQL text)")
			return false
		}
		n, err := strconv.Atoi(fields[1])
		text, ok := tpch.SQLQueries[n]
		if err != nil || !ok {
			var avail []int
			for q := range tpch.SQLQueries {
				avail = append(avail, q)
			}
			sort.Ints(avail)
			fmt.Printf("no SQL text for %q; available: %v\n", fields[1], avail)
			return false
		}
		fmt.Println(text)
		sh.run(text)
	case "\\prepare":
		// \prepare name select ... where x = ? and y < ?
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\prepare"))
		name, text, ok := strings.Cut(rest, " ")
		if !ok || name == "" || strings.TrimSpace(text) == "" {
			fmt.Println("usage: \\prepare NAME SQL-with-? ")
			return false
		}
		text = strings.TrimSuffix(strings.TrimSpace(text), ";")
		if sh.remote != nil {
			ps, err := sh.remote.Prepare(text)
			if err != nil {
				sh.fail(err)
				return false
			}
			if sh.wireStmts == nil {
				sh.wireStmts = make(map[string]*server.PreparedStmt)
			}
			if old := sh.wireStmts[name]; old != nil {
				old.Close()
			}
			sh.wireStmts[name] = ps
			fmt.Printf("prepared %q (%d parameters)\n", name, ps.NumParams())
		} else {
			ps, err := sql.Prepare(text)
			if err != nil {
				sh.fail(err)
				return false
			}
			if sh.localStmts == nil {
				sh.localStmts = make(map[string]*sql.Prepared)
			}
			sh.localStmts[name] = ps
			fmt.Printf("prepared %q (%d parameters)\n", name, ps.NumParams())
		}
	case "\\execute":
		// \execute name param1 param2 ... — bare tokens are typed by shape
		// (int, float, else string); quote with '...' to force a string.
		if len(fields) < 2 {
			fmt.Println("usage: \\execute NAME [PARAM ...]")
			return false
		}
		sh.executeStmt(fields[1], parseParams(fields[2:]))
	case "\\rf1", "\\rf2":
		if sh.db == nil {
			fmt.Println(fields[0] + " requires embedded mode")
			return false
		}
		count := 10
		if len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				fmt.Printf("usage: %s [N]  (refresh N orders; default 10)\n", fields[0])
				return false
			}
			count = n
		}
		sh.rfSeed++
		var stmts []string
		if fields[0] == "\\rf1" {
			stmts = tpch.RF1SQL(sh.data, count, sh.rfSeed)
		} else {
			stmts = tpch.RF2SQL(tpch.RF2Keys(sh.data, count, sh.rfSeed))
		}
		for _, s := range stmts {
			sh.execDML(s)
		}
	default:
		fmt.Printf("unknown command %s (try \\d, \\q N, \\timing, \\stats, \\prepare, \\execute, \\rf1 N, \\rf2 N, \\quit)\n", fields[0])
	}
	return false
}

// parseParams types bare REPL tokens by shape: integer, float, else string
// (surrounding single quotes stripped).
func parseParams(args []string) []any {
	out := make([]any, len(args))
	for i, a := range args {
		if n, err := strconv.ParseInt(a, 10, 64); err == nil {
			out[i] = n
			continue
		}
		if f, err := strconv.ParseFloat(a, 64); err == nil {
			out[i] = f
			continue
		}
		out[i] = strings.Trim(a, "'")
	}
	return out
}

// executeStmt runs a named prepared statement with the given values.
func (sh *shell) executeStmt(name string, params []any) {
	ctx, cancel := sh.stmtCtx()
	defer cancel()
	start := time.Now()
	if sh.remote != nil {
		ps := sh.wireStmts[name]
		if ps == nil {
			sh.fail(fmt.Errorf("no prepared statement %q (use \\prepare)", name))
			return
		}
		res, err := ps.Query(ctx, params...)
		if err != nil {
			sh.fail(err)
			return
		}
		printResult(wireSchema(res.Schema), res.Rows)
		sh.printTiming(len(res.Rows), start)
		return
	}
	ps := sh.localStmts[name]
	if ps == nil {
		sh.fail(fmt.Errorf("no prepared statement %q (use \\prepare)", name))
		return
	}
	bound, err := ps.Bind(params)
	if err != nil {
		sh.fail(err)
		return
	}
	if !ps.IsSelect() {
		sh.execDML(bound)
		return
	}
	schema, err := sh.db.SchemaSQL(bound)
	if err != nil {
		sh.fail(err)
		return
	}
	rows, err := sh.db.QuerySQLContext(ctx, bound)
	if err != nil {
		sh.fail(err)
		return
	}
	printResult(schema, rows)
	sh.printTiming(len(rows), start)
}

// printTiming prints the row count, with wall clock when \timing is on.
func (sh *shell) printTiming(rows int, start time.Time) {
	if sh.timing {
		fmt.Printf("(%d rows, %v)\n", rows, time.Since(start).Round(time.Microsecond))
	} else {
		fmt.Printf("(%d rows)\n", rows)
	}
}

// run executes the buffered input: each ';'-separated statement in order
// (EXPLAIN prefix shows the distributed plan, DML reports affected rows).
func (sh *shell) run(input string) {
	for _, stmt := range sql.SplitStatements(input) {
		sh.runOne(stmt)
	}
}

func (sh *shell) runOne(stmt string) {
	stmt = strings.TrimSuffix(strings.TrimSpace(stmt), ";")
	if stmt == "" {
		return
	}
	lower := strings.ToLower(stmt)
	switch {
	case strings.HasPrefix(lower, "explain analyze"):
		// EXPLAIN ANALYZE really runs the query (rows discarded) and prints
		// the plan annotated with actual row counts, per-operator timings,
		// phase spans, and scan IO.
		body := stmt[len("explain analyze"):]
		ctx, cancel := sh.stmtCtx()
		defer cancel()
		var text string
		var err error
		if sh.remote != nil {
			text, err = sh.remote.Profile(ctx, body)
		} else {
			var p *vectorh.QueryProfile
			p, err = sh.db.QueryProfileSQL(ctx, body)
			if err == nil {
				text = p.Render()
			}
		}
		if err != nil {
			sh.fail(err)
			return
		}
		fmt.Print(text)
		return
	case strings.HasPrefix(lower, "explain"):
		var plan string
		var err error
		if sh.remote != nil {
			plan, err = sh.remote.Explain(stmt[len("explain"):])
		} else {
			plan, err = sh.db.ExplainSQL(stmt[len("explain"):])
		}
		if err != nil {
			sh.fail(err)
			return
		}
		fmt.Print(plan)
		return
	case strings.HasPrefix(lower, "insert"), strings.HasPrefix(lower, "update"),
		strings.HasPrefix(lower, "delete"):
		sh.execDML(stmt)
		return
	}
	sh.runQuery(stmt)
}

func (sh *shell) runQuery(stmt string) {
	ctx, cancel := sh.stmtCtx()
	defer cancel()
	start := time.Now()
	var schema vectorh.Schema
	var rows [][]any
	var err error
	var queue, exec time.Duration
	if sh.remote != nil {
		var res *server.Result
		res, err = sh.remote.Query(ctx, stmt)
		if err == nil {
			rows = res.Rows
			schema = wireSchema(res.Schema)
			queue, exec = res.Queue, res.Exec
		}
	} else {
		// Both calls go through the DB's plan cache: one compile, one hit.
		schema, err = sh.db.SchemaSQL(stmt)
		if err == nil {
			rows, err = sh.db.QuerySQLContext(ctx, stmt)
		}
	}
	if err != nil {
		sh.fail(err)
		return
	}
	printResult(schema, rows)
	switch {
	case sh.timing && exec > 0:
		// Client round-trip plus the server-side split: admission queue wait
		// vs actual execution.
		fmt.Printf("(%d rows, %v round-trip; server exec=%v queue=%v)\n",
			len(rows), time.Since(start).Round(time.Microsecond),
			exec.Round(time.Microsecond), queue.Round(time.Microsecond))
	case sh.timing:
		fmt.Printf("(%d rows, %v)\n", len(rows), time.Since(start).Round(time.Microsecond))
	default:
		fmt.Printf("(%d rows)\n", len(rows))
	}
}

// execDML runs one INSERT/UPDATE/DELETE through the PDT trickle-update path.
func (sh *shell) execDML(stmt string) {
	ctx, cancel := sh.stmtCtx()
	defer cancel()
	start := time.Now()
	var n int64
	var err error
	if sh.remote != nil {
		n, err = sh.remote.Exec(ctx, stmt)
	} else {
		n, err = sh.db.ExecSQLContext(ctx, stmt)
	}
	if err != nil {
		sh.fail(err)
		return
	}
	if sh.timing {
		fmt.Printf("(%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
	} else {
		fmt.Printf("(%d rows affected)\n", n)
	}
}

// wireSchema converts wire column descriptors to a renderable schema.
func wireSchema(desc []server.ColDesc) vectorh.Schema {
	s := make(vectorh.Schema, len(desc))
	for i, d := range desc {
		t := vectorh.TString
		switch d.Kind {
		case "int32":
			t = vectorh.TInt32
		case "int64":
			t = vectorh.TInt64
		case "float64":
			t = vectorh.TFloat64
		}
		switch d.Logical {
		case "date":
			t = vectorh.TDate
		case "decimal":
			t = vectorh.TDecimal
		}
		s[i] = vectorh.Field{Name: d.Name, Type: t}
	}
	return s
}

// printResult renders rows as an aligned table, formatting dates and
// decimals per the output schema.
func printResult(schema vectorh.Schema, rows [][]any) {
	cells := make([][]string, len(rows)+1)
	cells[0] = make([]string, len(schema))
	widths := make([]int, len(schema))
	for c, f := range schema {
		cells[0][c] = f.Name
		widths[c] = len(f.Name)
	}
	for r, row := range rows {
		cells[r+1] = make([]string, len(schema))
		for c, v := range row {
			s := format(schema[c].Type, v)
			cells[r+1][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for r, row := range cells {
		for c, s := range row {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[c], s)
		}
		fmt.Println()
		if r == 0 {
			for c, w := range widths {
				if c > 0 {
					fmt.Print("-+-")
				}
				fmt.Print(strings.Repeat("-", w))
			}
			fmt.Println()
		}
	}
}

// format renders one value according to its logical column type.
func format(t vector.Type, v any) string {
	switch t.Logical {
	case vector.Date:
		if d, ok := v.(int32); ok {
			return vector.FormatDate(d)
		}
	case vector.Decimal:
		if i, ok := v.(int64); ok {
			sign := ""
			if i < 0 {
				sign, i = "-", -i
			}
			return fmt.Sprintf("%s%d.%02d", sign, i/100, i%100)
		}
	}
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.4f", f)
	}
	return fmt.Sprintf("%v", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
