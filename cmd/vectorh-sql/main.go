// Command vectorh-sql is an interactive SQL shell over an in-process
// VectorH cluster preloaded with TPC-H data. Statements end with ';'.
//
//	$ go run ./cmd/vectorh-sql -sf 0.01 -nodes 3
//	vectorh> select count(*) from lineitem;
//	vectorh> explain select n_name, sum(l_extendedprice) from lineitem ...;
//	vectorh> \d          -- list tables
//	vectorh> \q 6        -- run the TPC-H Q6 SQL text
//	vectorh> \quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
	"vectorh/internal/vector"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload")
	nodes := flag.Int("nodes", 3, "simulated cluster size")
	partitions := flag.Int("partitions", 6, "table partition count")
	threads := flag.Int("threads", 2, "exchange threads per node")
	query := flag.String("q", "", "run one statement and exit")
	flag.Parse()

	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	db, err := vectorh.Open(vectorh.Config{
		Nodes:          names,
		ThreadsPerNode: *threads,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loading TPC-H sf=%g onto %d nodes...\n", *sf, *nodes)
	start := time.Now()
	d := tpch.Generate(*sf, 42)
	if err := tpch.LoadIntoEngine(db.Engine, d, *partitions); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded in %v; statements end with ';', \\quit exits\n", time.Since(start).Round(time.Millisecond))

	if *query != "" {
		run(db, *query)
		return
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "vectorh> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if meta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			run(db, buf.String())
			buf.Reset()
			prompt = "vectorh> "
		} else if buf.Len() > 0 {
			prompt = "      -> "
		}
	}
}

// meta handles backslash commands; it reports whether the REPL should exit.
func meta(db *vectorh.DB, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\exit":
		return true
	case "\\d":
		for _, t := range db.SortedTables() {
			s, _ := db.TableSchema(t)
			rows, _ := db.TableRows(t)
			fmt.Printf("%-10s %8d rows\n", t, rows)
			for _, f := range s {
				fmt.Printf("    %-16s %s\n", f.Name, f.Type)
			}
		}
	case "\\q":
		if len(fields) != 2 {
			fmt.Println("usage: \\q N  (run the TPC-H query N SQL text)")
			return false
		}
		n, err := strconv.Atoi(fields[1])
		text, ok := tpch.SQLQueries[n]
		if err != nil || !ok {
			var avail []int
			for q := range tpch.SQLQueries {
				avail = append(avail, q)
			}
			sort.Ints(avail)
			fmt.Printf("no SQL text for %q; available: %v\n", fields[1], avail)
			return false
		}
		fmt.Println(text)
		run(db, text)
	default:
		fmt.Printf("unknown command %s (try \\d, \\q N, \\quit)\n", fields[0])
	}
	return false
}

// run executes one statement (EXPLAIN prefix shows the distributed plan).
func run(db *vectorh.DB, stmt string) {
	stmt = strings.TrimSuffix(strings.TrimSpace(stmt), ";")
	if stmt == "" {
		return
	}
	lower := strings.ToLower(stmt)
	if strings.HasPrefix(lower, "explain") {
		plan, err := db.ExplainSQL(stmt[len("explain"):])
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Print(plan)
		return
	}
	n, err := sql.Compile(stmt, db.Engine)
	if err != nil {
		fmt.Println(err)
		return
	}
	schema, err := n.Schema(db.Engine)
	if err != nil {
		fmt.Println(err)
		return
	}
	start := time.Now()
	rows, err := db.Query(n)
	if err != nil {
		fmt.Println(err)
		return
	}
	printResult(schema, rows)
	fmt.Printf("(%d rows, %v)\n", len(rows), time.Since(start).Round(time.Microsecond))
}

// printResult renders rows as an aligned table, formatting dates and
// decimals per the output schema.
func printResult(schema vectorh.Schema, rows [][]any) {
	cells := make([][]string, len(rows)+1)
	cells[0] = make([]string, len(schema))
	widths := make([]int, len(schema))
	for c, f := range schema {
		cells[0][c] = f.Name
		widths[c] = len(f.Name)
	}
	for r, row := range rows {
		cells[r+1] = make([]string, len(schema))
		for c, v := range row {
			s := format(schema[c].Type, v)
			cells[r+1][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for r, row := range cells {
		for c, s := range row {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[c], s)
		}
		fmt.Println()
		if r == 0 {
			for c, w := range widths {
				if c > 0 {
					fmt.Print("-+-")
				}
				fmt.Print(strings.Repeat("-", w))
			}
			fmt.Println()
		}
	}
}

// format renders one value according to its logical column type.
func format(t vector.Type, v any) string {
	switch t.Logical {
	case vector.Date:
		if d, ok := v.(int32); ok {
			return vector.FormatDate(d)
		}
	case vector.Decimal:
		if i, ok := v.(int64); ok {
			sign := ""
			if i < 0 {
				sign, i = "-", -i
			}
			return fmt.Sprintf("%s%d.%02d", sign, i/100, i%100)
		}
	}
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.4f", f)
	}
	return fmt.Sprintf("%v", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
