// Command vectorh-sql is an interactive SQL shell over an in-process
// VectorH cluster preloaded with TPC-H data. Statements end with ';';
// several statements may share a line (or an input buffer) and run in
// order. INSERT/UPDATE/DELETE run through the PDT trickle-update path.
//
//	$ go run ./cmd/vectorh-sql -sf 0.01 -nodes 3
//	vectorh> select count(*) from lineitem;
//	vectorh> explain select n_name, sum(l_extendedprice) from lineitem ...;
//	vectorh> insert into region (r_regionkey, r_name, r_comment) values (5, 'ATLANTIS', 'sunk');
//	vectorh> update orders set o_orderpriority = '1-URGENT' where o_orderkey = 7; delete from region where r_regionkey = 5;
//	vectorh> \d          -- list tables
//	vectorh> \q 6        -- run the TPC-H Q6 SQL text
//	vectorh> \rf1 10     -- run refresh stream RF1 (10 new orders) as SQL
//	vectorh> \rf2 10     -- run refresh stream RF2 (delete 10 orders) as SQL
//	vectorh> \quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
	"vectorh/internal/vector"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor to preload")
	nodes := flag.Int("nodes", 3, "simulated cluster size")
	partitions := flag.Int("partitions", 6, "table partition count")
	threads := flag.Int("threads", 2, "exchange threads per node")
	query := flag.String("q", "", "run one statement and exit")
	flag.Parse()

	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i+1)
	}
	db, err := vectorh.Open(vectorh.Config{
		Nodes:          names,
		ThreadsPerNode: *threads,
		BlockSize:      1 << 18,
		Format:         colstore.Format{BlockSize: 16 << 10, BlocksPerChunk: 64, MaxRowsPerBlock: 2048},
		MsgBytes:       16 << 10,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loading TPC-H sf=%g onto %d nodes...\n", *sf, *nodes)
	start := time.Now()
	d := tpch.Generate(*sf, 42)
	if err := tpch.LoadIntoEngine(db.Engine, d, *partitions); err != nil {
		fatal(err)
	}
	sh := &shell{db: db, data: d, rfSeed: 1000}
	fmt.Fprintf(os.Stderr, "loaded in %v; statements end with ';', \\quit exits\n", time.Since(start).Round(time.Millisecond))

	if *query != "" {
		sh.run(*query)
		return
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "vectorh> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if sh.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			sh.run(buf.String())
			buf.Reset()
			prompt = "vectorh> "
		} else if buf.Len() > 0 {
			prompt = "      -> "
		}
	}
}

// shell holds the REPL state: the database plus the generated TPC-H data
// the refresh-stream commands derive their inserts and delete keys from.
type shell struct {
	db     *vectorh.DB
	data   *tpch.Data
	rfSeed int64 // bumped per refresh so repeated \rf1 inserts fresh keys
}

// meta handles backslash commands; it reports whether the REPL should exit.
func (sh *shell) meta(cmd string) bool {
	db := sh.db
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\exit":
		return true
	case "\\d":
		for _, t := range db.SortedTables() {
			s, _ := db.TableSchema(t)
			rows, _ := db.TableRows(t)
			fmt.Printf("%-10s %8d rows\n", t, rows)
			for _, f := range s {
				fmt.Printf("    %-16s %s\n", f.Name, f.Type)
			}
		}
	case "\\q":
		if len(fields) != 2 {
			fmt.Println("usage: \\q N  (run the TPC-H query N SQL text)")
			return false
		}
		n, err := strconv.Atoi(fields[1])
		text, ok := tpch.SQLQueries[n]
		if err != nil || !ok {
			var avail []int
			for q := range tpch.SQLQueries {
				avail = append(avail, q)
			}
			sort.Ints(avail)
			fmt.Printf("no SQL text for %q; available: %v\n", fields[1], avail)
			return false
		}
		fmt.Println(text)
		sh.run(text)
	case "\\rf1", "\\rf2":
		count := 10
		if len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				fmt.Printf("usage: %s [N]  (refresh N orders; default 10)\n", fields[0])
				return false
			}
			count = n
		}
		sh.rfSeed++
		var stmts []string
		if fields[0] == "\\rf1" {
			stmts = tpch.RF1SQL(sh.data, count, sh.rfSeed)
		} else {
			stmts = tpch.RF2SQL(tpch.RF2Keys(sh.data, count, sh.rfSeed))
		}
		for _, s := range stmts {
			sh.execDML(s)
		}
	default:
		fmt.Printf("unknown command %s (try \\d, \\q N, \\rf1 N, \\rf2 N, \\quit)\n", fields[0])
	}
	return false
}

// run executes the buffered input: each ';'-separated statement in order
// (EXPLAIN prefix shows the distributed plan, DML reports affected rows).
func (sh *shell) run(input string) {
	for _, stmt := range sql.SplitStatements(input) {
		sh.runOne(stmt)
	}
}

func (sh *shell) runOne(stmt string) {
	db := sh.db
	stmt = strings.TrimSuffix(strings.TrimSpace(stmt), ";")
	if stmt == "" {
		return
	}
	lower := strings.ToLower(stmt)
	switch {
	case strings.HasPrefix(lower, "explain"):
		plan, err := db.ExplainSQL(stmt[len("explain"):])
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Print(plan)
		return
	case strings.HasPrefix(lower, "insert"), strings.HasPrefix(lower, "update"),
		strings.HasPrefix(lower, "delete"):
		sh.execDML(stmt)
		return
	}
	n, err := sql.Compile(stmt, db.Engine)
	if err != nil {
		fmt.Println(err)
		return
	}
	schema, err := n.Schema(db.Engine)
	if err != nil {
		fmt.Println(err)
		return
	}
	start := time.Now()
	rows, err := db.Query(n)
	if err != nil {
		fmt.Println(err)
		return
	}
	printResult(schema, rows)
	fmt.Printf("(%d rows, %v)\n", len(rows), time.Since(start).Round(time.Microsecond))
}

// execDML runs one INSERT/UPDATE/DELETE through the PDT trickle-update path.
func (sh *shell) execDML(stmt string) {
	start := time.Now()
	n, err := sh.db.ExecSQL(stmt)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("(%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
}

// printResult renders rows as an aligned table, formatting dates and
// decimals per the output schema.
func printResult(schema vectorh.Schema, rows [][]any) {
	cells := make([][]string, len(rows)+1)
	cells[0] = make([]string, len(schema))
	widths := make([]int, len(schema))
	for c, f := range schema {
		cells[0][c] = f.Name
		widths[c] = len(f.Name)
	}
	for r, row := range rows {
		cells[r+1] = make([]string, len(schema))
		for c, v := range row {
			s := format(schema[c].Type, v)
			cells[r+1][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for r, row := range cells {
		for c, s := range row {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[c], s)
		}
		fmt.Println()
		if r == 0 {
			for c, w := range widths {
				if c > 0 {
					fmt.Print("-+-")
				}
				fmt.Print(strings.Repeat("-", w))
			}
			fmt.Println()
		}
	}
}

// format renders one value according to its logical column type.
func format(t vector.Type, v any) string {
	switch t.Logical {
	case vector.Date:
		if d, ok := v.(int32); ok {
			return vector.FormatDate(d)
		}
	case vector.Decimal:
		if i, ok := v.(int64); ok {
			sign := ""
			if i < 0 {
				sign, i = "-", -i
			}
			return fmt.Sprintf("%s%d.%02d", sign, i/100, i%100)
		}
	}
	if f, ok := v.(float64); ok {
		return fmt.Sprintf("%.4f", f)
	}
	return fmt.Sprintf("%v", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
