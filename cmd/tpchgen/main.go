// Command tpchgen generates TPC-H tables as pipe-separated files (like
// dbgen's .tbl output) in a local directory.
//
//	tpchgen -sf 0.01 -o /tmp/tpch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vectorh/internal/spark"
	"vectorh/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	out := flag.String("o", ".", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	d := tpch.Generate(*sf, *seed)
	for _, info := range tpch.DDL(*sf, 1) {
		path := filepath.Join(*out, info.Name+".tbl")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		b := d.Tables[info.Name]
		for i := 0; i < b.Len(); i++ {
			fmt.Fprintln(w, spark.FormatCSVRow(b.Row(i), info.Schema))
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%-10s %8d rows -> %s\n", info.Name, b.Len(), path)
	}
}
