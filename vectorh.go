// Package vectorh is the public façade of the VectorH reproduction: a
// vectorized, columnar, updatable MPP SQL engine over a simulated Hadoop
// substrate (HDFS with instrumented block placement, YARN elasticity, MPI
// exchanges), faithfully following "VectorH: Taking SQL-on-Hadoop to the
// Next Level" (SIGMOD 2016).
//
// Quick start:
//
//	db, _ := vectorh.Open(vectorh.Config{Nodes: []string{"n1", "n2", "n3"}})
//	db.CreateTable(vectorh.TableInfo{Name: "t", Schema: schema,
//	        PartitionKey: "k", Partitions: 6})
//	db.Load("t", batches)
//	rows, _ := db.Query(plan.Top(plan.Scan("t"), 10, plan.Desc(plan.Col("k"))))
//
// Logical plans are built with the vectorh/internal/plan package; see
// examples/ for complete programs and internal/tpch for the full TPC-H
// workload expressed against this API.
package vectorh

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"vectorh/internal/core"
	"vectorh/internal/obs"
	"vectorh/internal/plan"
	"vectorh/internal/rewriter"
	"vectorh/internal/sql"
	"vectorh/internal/vector"
)

// Config parameterizes a database instance; the zero value yields a 3-node
// in-process cluster with paper-like defaults.
type Config = core.Config

// TableInfo declares a table: schema, optional hash partitioning
// (PartitionKey + Partitions) and optional clustered index (ClusteredOn).
// Tables without a partition key are replicated to every node.
type TableInfo = rewriter.TableInfo

// Schema and Field describe table columns.
type (
	// Schema is an ordered column list.
	Schema = vector.Schema
	// Field is one column.
	Field = vector.Field
)

// Column types.
var (
	TInt32   = vector.TInt32
	TInt64   = vector.TInt64
	TFloat64 = vector.TFloat64
	TString  = vector.TString
	TDate    = vector.TDate
	TDecimal = vector.TDecimal
)

// DB is a running VectorH instance (an in-process simulation of the whole
// cluster: workers, session master, HDFS, YARN).
//
// Concurrency: a DB is safe for concurrent use. Any number of goroutines
// may run QuerySQL/QuerySQLContext simultaneously — each query executes
// against a consistent snapshot (copy-on-write PDT masters plus a
// refcounted column-store metadata generation, pinned atomically at scan
// open). DML (ExecSQL and the InsertRows/UpdateWhere/DeleteWhere API) may
// run concurrently with queries; writers are serialized against each other
// internally, so concurrent DML statements execute one at a time. Running
// queries never observe a torn write: they either see a committed change
// entirely or not at all.
type DB struct {
	*core.Engine

	planOnce sync.Once
	plans    *sql.PlanCache
}

// Open starts a database.
func Open(cfg Config) (*DB, error) {
	e, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{Engine: e}, nil
}

// planCache lazily creates the shared compiled-plan cache (a DB built by
// struct literal, as tests and experiments do, gets one on first use).
func (db *DB) planCache() *sql.PlanCache {
	db.planOnce.Do(func() { db.plans = sql.NewPlanCache(0) })
	return db.plans
}

// compile lowers query through the plan cache, keyed on normalized token
// text and the engine's current catalog epoch (so DDL, DML commits and
// background rewrites invalidate cached plans).
func (db *DB) compile(query string) (plan.Node, vector.Schema, error) {
	n, s, _, err := db.planCache().Compile(query, db.Engine, db.Engine.CatalogEpoch())
	return n, s, err
}

// PlanCacheStats returns the compiled-plan cache counters.
func (db *DB) PlanCacheStats() sql.PlanCacheStats {
	return db.planCache().Stats()
}

// Prepare parses a parameterized statement template ('?' markers). Use
// QueryPrepared / ExecPrepared to run it with bound values; repeated
// executions share one cached plan per distinct parameter binding.
func (db *DB) Prepare(src string) (*sql.Prepared, error) {
	return sql.Prepare(src)
}

// QueryPrepared binds params into a prepared SELECT and executes it through
// the plan cache, returning all result rows.
func (db *DB) QueryPrepared(ctx context.Context, stmt *sql.Prepared, params ...any) ([][]any, error) {
	bound, err := stmt.Bind(params)
	if err != nil {
		return nil, err
	}
	return db.QuerySQLContext(ctx, bound)
}

// ExecPrepared binds params into a prepared DML statement and executes it.
func (db *DB) ExecPrepared(ctx context.Context, stmt *sql.Prepared, params ...any) (int64, error) {
	bound, err := stmt.Bind(params)
	if err != nil {
		return 0, err
	}
	return db.ExecSQLContext(ctx, bound)
}

// QuerySQL parses, binds and executes one SQL SELECT statement, returning
// all result rows. The statement is lowered onto the same logical plan
// layer as hand-built plan.Node queries, so rewriting, Xchg parallelism and
// MinMax skipping apply unchanged:
//
//	rows, err := db.QuerySQL(`select city, sum(amount) as total
//	                          from sales group by city order by total desc`)
func (db *DB) QuerySQL(query string) ([][]any, error) {
	return db.QuerySQLContext(context.Background(), query)
}

// QuerySQLContext is QuerySQL honoring a context: a deadline or
// cancellation propagates to every scan, local exchange producer and
// distributed exchange sender of the query (checked per vector batch), so a
// cancelled query stops consuming cores and releases its storage snapshot
// promptly. The serving layer (internal/server) builds its per-query
// deadlines and client-initiated cancellation on this entry point.
func (db *DB) QuerySQLContext(ctx context.Context, query string) ([][]any, error) {
	n, _, err := db.compile(query)
	if err != nil {
		return nil, err
	}
	return db.QueryContext(ctx, n)
}

// QueryStreamSQL compiles a SELECT and streams its result rows to yield in
// batches as the root stream produces them, instead of buffering the full
// result. A non-nil error from yield (or a cancelled context) stops the
// execution.
func (db *DB) QueryStreamSQL(ctx context.Context, query string, yield func(rows [][]any) error) error {
	n, _, err := db.compile(query)
	if err != nil {
		return err
	}
	_, err = db.QueryStreamContext(ctx, n, yield)
	return err
}

// QueryProfile is the result of one profiled SQL execution — the substance
// behind EXPLAIN ANALYZE: the rows themselves plus the annotated plan tree
// (estimated vs actual rows, batches, per-operator wall time), the compile
// and execute phase spans, the plan-cache outcome, the flat per-operator
// aggregates (heaviest first) and the query's exact scan IO.
type QueryProfile struct {
	Rows      [][]any
	Schema    Schema
	Analyzed  string
	Phases    []obs.Phase
	CacheHit  bool
	Operators []obs.OpProfile
	Scan      core.ScanIO
	Elapsed   time.Duration
}

// Render formats the profile the way the REPL prints EXPLAIN ANALYZE: the
// annotated plan tree followed by the phase breakdown and scan IO totals.
func (p *QueryProfile) Render() string {
	var sb strings.Builder
	sb.WriteString(p.Analyzed)
	fmt.Fprintf(&sb, "Phases: %s (plan cache %s)\n",
		obs.FormatPhases(p.Phases), map[bool]string{true: "hit", false: "miss"}[p.CacheHit])
	fmt.Fprintf(&sb, "Scan IO: blocks=%d bytes=%d cache_hits=%d spans_pruned=%d\n",
		p.Scan.BlocksRead, p.Scan.BytesDecoded, p.Scan.CacheHits, p.Scan.SpansPruned)
	return sb.String()
}

// QueryProfileSQL executes a SELECT with per-operator profiling and phase
// tracing — the API behind `EXPLAIN ANALYZE <sql>`. The profiled run pays
// for its instrumentation (a timing wrapper around every operator stream);
// the regular query paths insert no wrappers and are unaffected.
func (db *DB) QueryProfileSQL(ctx context.Context, query string) (*QueryProfile, error) {
	p := &QueryProfile{}
	err := db.queryProfile(ctx, query, p, func(rows [][]any) error {
		p.Rows = append(p.Rows, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// QueryStreamProfileSQL is QueryProfileSQL streaming result rows to yield
// instead of buffering them (Rows stays nil) — the serving layer's slow-query
// logging path.
func (db *DB) QueryStreamProfileSQL(ctx context.Context, query string, yield func(rows [][]any) error) (*QueryProfile, error) {
	p := &QueryProfile{}
	if err := db.queryProfile(ctx, query, p, yield); err != nil {
		return nil, err
	}
	return p, nil
}

func (db *DB) queryProfile(ctx context.Context, query string, p *QueryProfile, yield func(rows [][]any) error) error {
	tr := obs.NewTrace()
	n, s, _, err := db.planCache().CompileTraced(query, db.Engine, db.Engine.CatalogEpoch(), tr)
	if err != nil {
		return err
	}
	res, err := db.QueryStreamOpts(ctx, n, core.QueryOptions{Profile: true, Trace: tr}, yield)
	if err != nil {
		return err
	}
	p.Schema = s
	p.Analyzed = res.Analyzed
	p.Phases = tr.Phases()
	p.CacheHit = tr.CacheHit()
	p.Operators = res.Operators
	p.Scan = res.Scan
	p.Elapsed = res.Elapsed
	return nil
}

// ExplainSQL compiles a SQL statement and returns the distributed physical
// plan without executing it.
func (db *DB) ExplainSQL(query string) (string, error) {
	n, _, err := db.compile(query)
	if err != nil {
		return "", err
	}
	return db.Explain(n)
}

// ExecSQL parses, binds and executes one SQL data-modification statement —
// INSERT INTO … VALUES, UPDATE … SET … WHERE, DELETE FROM … WHERE — and
// returns the number of affected rows. Statements are type-checked against
// the catalog at bind time (with line:col errors, like SELECT) and lowered
// onto the engine's trickle-update entry points, so rows flow through
// transactions into the Write-PDTs and become visible to the PDT-merging
// scans immediately after commit (§6):
//
//	n, err := db.ExecSQL(`update orders set o_orderpriority = '1-URGENT'
//	                      where o_orderdate >= date '1998-01-01'`)
//
// For scripts with multiple ';'-separated statements, split them first with
// sql.SplitStatements and call ExecSQL per statement.
func (db *DB) ExecSQL(stmt string) (int64, error) {
	return sql.Exec(stmt, db.Engine)
}

// ExecSQLContext is ExecSQL honoring a context: cancellation before commit
// aborts the statement's transaction (a committed statement is never undone
// — post-commit flush work may still run to completion).
func (db *DB) ExecSQLContext(ctx context.Context, stmt string) (int64, error) {
	return sql.ExecContext(ctx, stmt, db.Engine)
}

// SchemaSQL compiles a SQL statement and returns its output schema (column
// names and types), for clients that render results.
// A repeated query's schema comes straight from its cache entry, so a
// serving layer that asks for the schema and then executes compiles once.
func (db *DB) SchemaSQL(query string) (Schema, error) {
	_, s, err := db.compile(query)
	return s, err
}
