// Benchmarks regenerating the paper's evaluation artifacts; each testing.B
// target corresponds to one table or figure — EXPERIMENTS.md maps every
// benchmark to its paper artifact and explains which measured shapes are
// expected to match. Run with:
//
//	go test -bench=. -benchmem .
package vectorh_test

import (
	"context"
	"fmt"
	"testing"

	"vectorh"
	"vectorh/internal/baseline"
	"vectorh/internal/experiments"
	"vectorh/internal/tpch"
)

const benchSF = 0.01

// BenchmarkFig1QueryTime regenerates Figure 1 (a+b): hot scan time and data
// read under varying selectivity across formats.
func BenchmarkFig1QueryTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchSF)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

// BenchmarkFig2Affinity regenerates Figure 2: min-cost re-replication and
// responsibility reassignment after a node failure.
func BenchmarkFig2Affinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep)
		}
	}
}

// BenchmarkFig5Ablation regenerates the §5 rewrite-rule ablation (paper:
// 5.02 / 5.64 / 5.67 / 25.51 / 26.14 seconds on their cluster).
func BenchmarkFig5Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5Ablation(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.Logf("%-24s %v", r.Name, r.Elapsed)
			}
		}
	}
}

// BenchmarkLoadPaths regenerates the §7 load comparison: vwload remote vs
// tweaked-local vs Spark connector.
func BenchmarkLoadPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadPaths(9, 4000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.Logf("%-24s %v local=%dKB remote=%dKB", r.Name, r.Elapsed, r.LocalBytes/1024, r.RemoteBytes/1024)
			}
		}
	}
}

// BenchmarkTPCH regenerates the Figure 7 table: all 22 queries on VectorH
// versus the baseline personalities.
func BenchmarkTPCH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TPCH(benchSF, 3,
			[]baseline.Flavor{baseline.HAWQ, baseline.SparkSQL, baseline.Impala, baseline.Hive})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

// BenchmarkTPCHPerQuery runs each query as its own benchmark target on the
// VectorH engine only, reporting allocations — the per-query numbers that
// `vectorh-bench -exp tpchbench` records into BENCH_tpch.json (see the
// Performance sections of README.md and EXPERIMENTS.md).
func BenchmarkTPCHPerQuery(b *testing.B) {
	d := tpch.Generate(benchSF, 9)
	eng, err := experiments.NewEngine(3, 2, 6)
	if err != nil {
		b.Fatal(err)
	}
	if err := tpch.LoadIntoEngine(eng, d, 6); err != nil {
		b.Fatal(err)
	}
	for q := 1; q <= tpch.NumQueries; q++ {
		q := q
		b.Run(fmt.Sprintf("Q%02d", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := tpch.BuildQuery(q, eng)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Query(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTPCHRefresh runs the TPC-H refresh streams RF1/RF2 as SQL DML
// through the PDT trickle-update path (with update propagation forced) and
// re-validates every SQL TPC-H query against expected results recomputed
// over the post-refresh data. Named so CI's `-bench=TPCH` smoke step picks
// it up: the update path gets the same can't-silently-rot guarantee as the
// query path.
func BenchmarkTPCHRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Refresh(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range res.Queries {
			if !q.Match {
				b.Fatalf("Q%02d diverged from the recomputed expected result after refresh", q.Q)
			}
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

// BenchmarkTPCHSelectivity sweeps the Q6-shaped scan across predicate
// selectivities, comparing the late-materialized pushdown pipeline against
// the Select-above-scan pipeline (blocks read, bytes decoded, ns/op) and
// validating that both return the same aggregates. Named so CI's
// `-bench=TPCH` smoke step picks it up: the scan-pushdown path gets the
// same can't-silently-rot guarantee as the query and update paths.
func BenchmarkTPCHSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Selectivity(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllMatch() {
			b.Fatal("pushdown pipeline diverged from the Select-above-scan pipeline")
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

// BenchmarkTPCHJoinOrder runs the join-heavy TPC-H queries from their
// hand-built plans (hand-written join order) and from SQL text (the
// stats-driven ordering pass in internal/sql), validating row-identical
// results and reporting the per-query cost of the optimizer's choice —
// the numbers `vectorh-bench -exp joinorder` records into BENCH_tpch.json.
// Named so CI's `-bench=TPCH` smoke step picks it up: the join-order pass
// gets the same can't-silently-rot guarantee as the other planner paths.
func BenchmarkTPCHJoinOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.JoinOrder(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllMatch() {
			b.Fatal("an optimizer-ordered plan diverged from its hand-built counterpart")
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

// BenchmarkTPCHCompression runs the execute-on-compressed-data experiment:
// the target TPC-H queries with compressed-domain execution (dictionary
// verdicts, code-space sieves and join/group keys, frame-bounds skips) on
// and off, validating row-identical results and reporting the decode /
// materialization / skip work of each pipeline — the numbers
// `vectorh-bench -exp compression` records into BENCH_tpch.json. Named so
// CI's `-bench=TPCH` smoke step picks it up: the code-space kernels get the
// same can't-silently-rot guarantee as the other scan paths.
func BenchmarkTPCHCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Compression(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllMatch() {
			b.Fatal("the code-space pipeline diverged from the value-space pipeline")
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

// BenchmarkUpdateImpact regenerates the bottom block of Figure 7: RF1/RF2
// times and the GeoDiff of query performance after updates (paper: VectorH
// 102.8% vs Hive 138.2%).
// BenchmarkTPCHConcurrency drives the full serving-layer scaling experiment
// (1..256 prepared-statement sessions over loopback TCP). Run with
// -mutexprofile to see where sessions contend.
func BenchmarkTPCHConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Concurrency(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllMatch {
			b.Fatal("a remote result diverged from in-process execution")
		}
		if res.PlanCacheHitRate < 0.9 {
			b.Fatalf("plan cache hit rate %.1f%%, want >= 90%%", 100*res.PlanCacheHitRate)
		}
		if i == 0 {
			b.Log("\n" + res.Report())
		}
	}
}

func BenchmarkUpdateImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.UpdateImpact(benchSF, 3, []int{1, 3, 6, 12, 14})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.Logf("%-8s RF1=%v RF2=%v GeoDiff=%.1f%%", r.System, r.RF1, r.RF2, r.GeoDiff*100)
			}
		}
	}
}

// BenchmarkTPCHProfileOverhead measures the cost of per-operator profiling:
// the same TPC-H query executed plain ("off", the default path — no wrapper
// operators are inserted, so it pays nothing per batch) and under EXPLAIN
// ANALYZE ("on", every operator wrapped, phase spans recorded). Compare the
// two sub-benchmark timings to read the overhead; both runs are validated
// row-count-identical. Named so CI's bench smoke picks it up and the
// profiled execution path cannot silently rot.
func BenchmarkTPCHProfileOverhead(b *testing.B) {
	d := tpch.Generate(benchSF, 9)
	eng, err := experiments.NewEngine(3, 2, 6)
	if err != nil {
		b.Fatal(err)
	}
	if err := tpch.LoadIntoEngine(eng, d, 6); err != nil {
		b.Fatal(err)
	}
	db := &vectorh.DB{Engine: eng}
	query := tpch.SQLQueries[1]
	plainRows, err := db.QuerySQL(query)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.QuerySQL(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != len(plainRows) {
				b.Fatalf("plain run returned %d rows, want %d", len(rows), len(plainRows))
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := db.QueryProfileSQL(context.Background(), query)
			if err != nil {
				b.Fatal(err)
			}
			if len(p.Rows) != len(plainRows) {
				b.Fatalf("profiled run returned %d rows, want %d", len(p.Rows), len(plainRows))
			}
			if len(p.Operators) == 0 {
				b.Fatal("profiled run recorded no operators")
			}
		}
	})
}

// BenchmarkProfileQ1 regenerates the Appendix per-operator profile of Q1.
func BenchmarkProfileQ1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ProfileQ1(benchSF, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep)
		}
	}
}
