module vectorh

go 1.24
