package vectorh_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"vectorh/internal/core"
	"vectorh/internal/sql"
	"vectorh/internal/tpch"
)

// TestExplainAnalyzeAllTPCH runs every TPC-H SQL query under
// QueryProfileSQL and asserts the EXPLAIN ANALYZE actuals are sane: the root
// operator's measured row count equals the result row count, every operator
// reports consistent batch/peak/time figures, at least one scan operator
// attributes IO, and the compile/execute phase spans are present.
func TestExplainAnalyzeAllTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("loads TPC-H")
	}
	db, _ := openTPCH(t, 0.01)

	for q := 1; q <= 22; q++ {
		sqlText, ok := tpch.SQLQueries[q]
		if !ok {
			t.Fatalf("Q%d missing from tpch.SQLQueries", q)
		}
		t.Run(fmt.Sprintf("Q%02d", q), func(t *testing.T) {
			p, err := db.QueryProfileSQL(context.Background(), sqlText)
			if err != nil {
				t.Fatal(err)
			}
			if p.Analyzed == "" {
				t.Fatal("no analyzed plan")
			}
			if !strings.Contains(p.Analyzed, "actual rows=") {
				t.Errorf("analyzed plan lacks actuals:\n%s", p.Analyzed)
			}
			if !strings.Contains(p.Analyzed, "~") {
				t.Errorf("analyzed plan lacks cardinality estimates:\n%s", p.Analyzed)
			}
			if len(p.Operators) == 0 {
				t.Fatal("no operator profiles")
			}

			// The heaviest-first flat list and the tree agree on the root:
			// find the root's aggregate via the first line of the tree.
			var rootRows, rootBatches int64
			var haveScanIO bool
			for _, op := range p.Operators {
				if op.Rows < 0 || op.Batches < 0 || op.Nanos < 0 {
					t.Errorf("operator %s has negative figures: %+v", op.Label, op)
				}
				if op.Rows > 0 && op.Batches == 0 {
					t.Errorf("operator %s produced %d rows in 0 batches", op.Label, op.Rows)
				}
				if op.PeakBatch > 0 && op.Rows > 0 && op.PeakBatch > op.Rows {
					t.Errorf("operator %s peak batch %d exceeds total rows %d", op.Label, op.PeakBatch, op.Rows)
				}
				if op.BlocksRead > 0 || op.BytesDecoded > 0 || op.CacheHits > 0 {
					haveScanIO = true
				}
				if strings.HasPrefix(strings.TrimSpace(p.Analyzed), op.Label) {
					rootRows, rootBatches = op.Rows, op.Batches
				}
			}
			if rootRows != int64(len(p.Rows)) {
				t.Errorf("root actual rows=%d but result has %d rows", rootRows, len(p.Rows))
			}
			if len(p.Rows) > 0 && rootBatches == 0 {
				t.Errorf("root produced %d rows but 0 batches", len(p.Rows))
			}
			if !haveScanIO {
				t.Error("no scan operator attributed any IO")
			}
			if p.Scan.BlocksRead == 0 && p.Scan.BytesDecoded == 0 && p.Scan.CacheHits == 0 {
				t.Error("per-query scan IO totals are empty")
			}

			// Phase spans: a cold compile records parse through joinorder;
			// execute is always present and bounded by the elapsed time.
			phases := map[string]time.Duration{}
			for _, ph := range p.Phases {
				phases[ph.Name] = ph.Nanos
			}
			if _, ok := phases["execute"]; !ok {
				t.Errorf("missing execute phase: %v", p.Phases)
			}
			if !p.CacheHit {
				for _, want := range []string{"parse", "bind", "joinorder", "rewrite"} {
					if _, ok := phases[want]; !ok {
						t.Errorf("cold compile missing %q phase: %v", want, p.Phases)
					}
				}
			}
			if phases["execute"] > p.Elapsed+time.Second {
				t.Errorf("execute span %v exceeds elapsed %v", phases["execute"], p.Elapsed)
			}

			// The profiled run returns the same rows as the plain run.
			plain, err := db.QuerySQL(sqlText)
			if err != nil {
				t.Fatal(err)
			}
			if len(plain) != len(p.Rows) {
				t.Errorf("profiled run returned %d rows, plain run %d", len(p.Rows), len(plain))
			}
		})
	}
}

// TestProfileOffNoWrappers asserts the structural zero-overhead property:
// without Profile, the result carries no profiling artifacts at all (no
// wrapper is inserted, so the off path has nothing to pay per batch).
func TestProfileOffNoWrappers(t *testing.T) {
	if testing.Short() {
		t.Skip("loads TPC-H")
	}
	db, _ := openTPCH(t, 0.005)
	n, err := sql.Compile(tpch.SQLQueries[6], db.Engine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryOpts(n, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil || res.Analyzed != "" || res.Operators != nil {
		t.Errorf("unprofiled run carries profiling artifacts: %+v", res)
	}
	p, err := db.QueryProfileSQL(context.Background(), tpch.SQLQueries[6])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(p.Rows) {
		t.Errorf("profiled %d rows vs plain %d rows", len(p.Rows), len(res.Rows))
	}
}

// TestQueryProfileCacheHit pins the plan-cache flag: the second profiled run
// of the same statement reports a hit and carries no compile phases.
func TestQueryProfileCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("loads TPC-H")
	}
	db, _ := openTPCH(t, 0.005)
	ctx := context.Background()
	first, err := db.QueryProfileSQL(ctx, tpch.SQLQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first run should be a cache miss")
	}
	second, err := db.QueryProfileSQL(ctx, tpch.SQLQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second run should be a cache hit")
	}
	for _, ph := range second.Phases {
		if ph.Name == "parse" || ph.Name == "bind" {
			t.Errorf("cache hit still recorded compile phase %q", ph.Name)
		}
	}
	if got := second.Render(); !strings.Contains(got, "plan cache hit") || !strings.Contains(got, "Scan IO:") {
		t.Errorf("Render missing sections:\n%s", got)
	}
}
