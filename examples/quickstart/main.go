// Quickstart: open a 3-node VectorH cluster, create a partitioned table,
// bulk load it, and run an aggregation query.
package main

import (
	"fmt"
	"log"

	"vectorh"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

func main() {
	db, err := vectorh.Open(vectorh.Config{Nodes: []string{"node1", "node2", "node3"}})
	if err != nil {
		log.Fatal(err)
	}

	schema := vectorh.Schema{
		{Name: "id", Type: vectorh.TInt64},
		{Name: "city", Type: vectorh.TString},
		{Name: "amount", Type: vectorh.TFloat64},
	}
	if err := db.CreateTable(vectorh.TableInfo{
		Name: "sales", Schema: schema, PartitionKey: "id", Partitions: 6,
	}); err != nil {
		log.Fatal(err)
	}

	cities := []string{"Amsterdam", "Paris", "Berlin"}
	b := vector.NewBatchForSchema(schema, 9000)
	for i := 0; i < 9000; i++ {
		b.AppendRow(int64(i), cities[i%3], float64(i%100))
	}
	if err := db.Load("sales", []*vector.Batch{b}); err != nil {
		log.Fatal(err)
	}

	q := plan.OrderBy(
		plan.Aggregate(
			plan.Filter(plan.Scan("sales"), plan.GE(plan.Col("amount"), plan.Float(50))),
			[]string{"city"},
			plan.A("total", plan.Sum, plan.Col("amount")),
			plan.AStar("n")),
		plan.Desc(plan.Col("total")))

	explain, _ := db.Explain(q)
	fmt.Println("distributed plan:")
	fmt.Println(explain)

	rows, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%-10s total=%.0f count=%d\n", r[0], r[1], r[2])
	}
	st := db.FS().Stats()
	fmt.Printf("IO: %d bytes local (short-circuit), %d remote\n", st.LocalBytesRead, st.RemoteBytesRead)
}
