// Trickleupdates: PDT-based inserts, deletes and updates on a clustered
// table, snapshot-consistent reads, and update propagation to the column
// store (§6 of the paper).
package main

import (
	"fmt"
	"log"

	"vectorh"
	"vectorh/internal/plan"
	"vectorh/internal/vector"
)

func main() {
	db, err := vectorh.Open(vectorh.Config{Nodes: []string{"node1", "node2", "node3"}})
	if err != nil {
		log.Fatal(err)
	}
	schema := vectorh.Schema{
		{Name: "k", Type: vectorh.TInt64},
		{Name: "d", Type: vectorh.TDate},
		{Name: "v", Type: vectorh.TFloat64},
	}
	if err := db.CreateTable(vectorh.TableInfo{
		Name: "events", Schema: schema, PartitionKey: "k", Partitions: 4, ClusteredOn: "k",
	}); err != nil {
		log.Fatal(err)
	}
	b := vector.NewBatchForSchema(schema, 10000)
	for i := 0; i < 10000; i++ {
		b.AppendRow(int64(i), vector.MustDate("1995-01-01")+int32(i/50), float64(i))
	}
	if err := db.Load("events", []*vector.Batch{b}); err != nil {
		log.Fatal(err)
	}

	count := func(label string) {
		rows, err := db.Query(plan.Aggregate(plan.Scan("events", "k"), nil, plan.AStar("n")))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s rows=%v\n", label, rows[0][0])
	}
	count("after load")

	// Trickle inserts land in PDTs; queries see them immediately.
	nb := vector.NewBatchForSchema(schema, 500)
	for i := 0; i < 500; i++ {
		nb.AppendRow(int64(100000+i), vector.MustDate("1998-01-01"), float64(-1))
	}
	if err := db.InsertRows("events", nb); err != nil {
		log.Fatal(err)
	}
	count("after 500 trickle inserts")

	n, err := db.DeleteWhere("events", plan.LT(plan.Col("k"), plan.Int(1000)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted %d rows\n", n)
	count("after delete k<1000")

	n, err = db.UpdateWhere("events",
		plan.GE(plan.Col("k"), plan.Int(100000)),
		[]string{"v"}, []plan.Expr{plan.Float(42)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated %d rows\n", n)

	// Flush PDTs into the column store (tail inserts append blocks,
	// deletes/updates rewrite the partition generation).
	for p := 0; p < 4; p++ {
		if err := db.PropagatePartition("events", p); err != nil {
			log.Fatal(err)
		}
	}
	count("after update propagation")
	rows, _ := db.Query(plan.Filter(plan.Scan("events"), plan.EQ(plan.Col("k"), plan.Int(100003))))
	fmt.Printf("row 100003 after everything: %v\n", rows[0])
}
