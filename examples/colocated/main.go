// Colocated: demonstrates the §5 planner rules — co-located merge joins on
// co-partitioned clustered tables, replicated build sides, and the cost of
// turning the rules off (the Figure 5 ablation in miniature).
package main

import (
	"fmt"
	"log"

	"vectorh"
	"vectorh/internal/core"
	"vectorh/internal/plan"
	"vectorh/internal/tpch"
)

func main() {
	db, err := vectorh.Open(vectorh.Config{Nodes: []string{"node1", "node2", "node3"}})
	if err != nil {
		log.Fatal(err)
	}
	d := tpch.Generate(0.003, 42)
	if err := tpch.LoadIntoEngine(db.Engine, d, 6); err != nil {
		log.Fatal(err)
	}

	// lineitem ⋈ orders is co-partitioned AND co-ordered: merge join, no
	// network. supplier is replicated: local build. Only the group-by
	// exchange touches the wire.
	q := plan.Top(
		plan.Aggregate(
			plan.Join(plan.InnerJoin,
				plan.Join(plan.InnerJoin,
					plan.Scan("lineitem", "l_orderkey", "l_suppkey"),
					plan.Scan("orders", "o_orderkey", "o_orderdate"),
					[]string{"l_orderkey"}, []string{"o_orderkey"}),
				plan.Scan("supplier", "s_suppkey", "s_name"),
				[]string{"l_suppkey"}, []string{"s_suppkey"}),
			[]string{"s_suppkey", "s_name"},
			plan.AStar("l_count")),
		10, plan.Desc(plan.Col("l_count")))

	explain, _ := db.Explain(q)
	fmt.Println("plan with all rewrite rules:")
	fmt.Println(explain)

	for _, cfg := range []struct {
		name string
		opts core.QueryOptions
	}{
		{"all rules", core.QueryOptions{}},
		{"no local join", func() core.QueryOptions { off := false; return core.QueryOptions{LocalJoin: &off} }()},
	} {
		db.Net().Reset()
		res, err := db.QueryOpts(q, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		n := db.Net().Stats()
		fmt.Printf("%-14s time=%-12v network=%7.1fKB (%d msgs, %d local handoffs)\n",
			cfg.name, res.Elapsed, float64(n.RemoteBytes)/1024, n.RemoteMsgs, n.LocalHandoffs)
	}
}
