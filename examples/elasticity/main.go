// Elasticity: YARN negotiation through the dbAgent, preemption by a
// higher-priority tenant, regrowth, and a node failure with min-cost-flow
// re-replication (§3, §4 of the paper).
package main

import (
	"fmt"
	"log"

	"vectorh"
	"vectorh/internal/plan"
	"vectorh/internal/tpch"
	"vectorh/internal/yarn"
)

func main() {
	db, err := vectorh.Open(vectorh.Config{
		Nodes:         []string{"node1", "node2", "node3", "node4"},
		NodeResources: yarn.Resource{MemoryMB: 8192, VCores: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	d := tpch.Generate(0.002, 3)
	if err := tpch.LoadIntoEngine(db.Engine, d, 8); err != nil {
		log.Fatal(err)
	}

	fmt.Println("worker set:", db.Nodes())
	for _, n := range db.Nodes() {
		fmt.Printf("  %s footprint: %v\n", n, db.Agent().Footprint(n))
	}

	// A higher-priority tenant preempts half of node2.
	tenant := db.RM().Submit("etl-job", 9)
	if _, victims, err := db.RM().AllocateWithPreemption(tenant, "node2",
		yarn.Resource{MemoryMB: 4096, VCores: 4}); err == nil {
		fmt.Printf("tenant preempted %d containers on node2; footprint now %v\n",
			len(victims), db.Agent().Footprint("node2"))
	}
	// Queries keep running on the reduced footprint.
	q := plan.Aggregate(plan.Scan("lineitem", "l_quantity"), nil,
		plan.A("s", plan.Sum, plan.Dec("l_quantity")))
	if rows, err := db.Query(q); err == nil {
		fmt.Println("sum(l_quantity) during preemption:", rows[0][0])
	}
	// Tenant leaves; dbAgent climbs back to its target.
	for _, c := range tenant.Containers() {
		db.RM().Release(c)
	}
	fmt.Println("regrown footprint on node2:", db.Agent().GrowToTarget("node2"))

	// Node failure: re-replication + responsibility reassignment.
	before, _ := db.Query(q)
	if err := db.KillNode("node3"); err != nil {
		log.Fatal(err)
	}
	after, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node3 failed; workers now %v\n", db.Nodes())
	fmt.Printf("sum before failure=%v after=%v (identical: %v)\n",
		before[0][0], after[0][0], before[0][0] == after[0][0])
	db.FS().ResetStats()
	db.Query(q)
	st := db.FS().Stats()
	fmt.Printf("post-recovery IO: local=%d remote=%d (re-replication restored locality)\n",
		st.LocalBytesRead, st.RemoteBytesRead)
}
