// Sparkload: the §7 ingestion comparison — plain vwload (master reads all
// CSV input, much of it remote), locality-tweaked vwload, and the
// Spark-VectorH connector whose RDD-partition assignment gets local reads
// out of the box.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"vectorh"
	"vectorh/internal/colstore"
	"vectorh/internal/core"
	"vectorh/internal/rewriter"
	"vectorh/internal/spark"
	"vectorh/internal/vector"
)

var schema = vectorh.Schema{
	{Name: "k", Type: vectorh.TInt64},
	{Name: "a", Type: vectorh.TInt64},
	{Name: "b", Type: vectorh.TInt64},
}

func setup() (*core.Engine, []string) {
	db, err := vectorh.Open(vectorh.Config{
		Nodes:       []string{"node1", "node2", "node3"},
		Replication: 1, // keep CSV inputs pinned to their writer
		Format:      colstore.Format{BlockSize: 32 << 10, BlocksPerChunk: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable(rewriter.TableInfo{
		Name: "t", Schema: schema, PartitionKey: "k", Partitions: 3,
	}); err != nil {
		log.Fatal(err)
	}
	nodes := db.Nodes()
	var paths []string
	id := 0
	for f := 0; f < 9; f++ {
		var sb strings.Builder
		for r := 0; r < 5000; r++ {
			fmt.Fprintf(&sb, "%d|%d|%d\n", id, id*3, id*7)
			id++
		}
		p := fmt.Sprintf("/csv/in%02d.tbl", f)
		if err := db.FS().WriteFile(p, nodes[f%len(nodes)], []byte(sb.String())); err != nil {
			log.Fatal(err)
		}
		paths = append(paths, p)
	}
	return db.Engine, paths
}

func main() {
	run := func(name string, load func(e *core.Engine, paths []string) error) {
		eng, paths := setup()
		eng.FS().ResetStats()
		start := time.Now()
		if err := load(eng, paths); err != nil {
			log.Fatal(err)
		}
		st := eng.FS().Stats()
		n, _ := eng.TableRows("t")
		fmt.Printf("%-24s %-12v rows=%d local=%dKB remote=%dKB\n",
			name, time.Since(start).Round(time.Millisecond), n,
			st.LocalBytesRead/1024, st.RemoteBytesRead/1024)
	}
	run("vwload (remote reads)", func(e *core.Engine, paths []string) error {
		return spark.VWLoad(e, "t", paths)
	})
	run("vwload (tweaked local)", func(e *core.Engine, paths []string) error {
		return spark.VWLoadLocal(e, "t", paths)
	})
	run("spark connector", func(e *core.Engine, paths []string) error {
		rdd, err := spark.TextFileRDD(e.FS(), paths)
		if err != nil {
			return err
		}
		assign, err := spark.ConnectorLoad(e, "t", rdd)
		if err != nil {
			return err
		}
		fmt.Printf("  connector assignment: %v\n", assign)
		return nil
	})
	_ = vector.MaxSize
}
